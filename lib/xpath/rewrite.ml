open Ast

let rec nnf phi = positive phi

and positive = function
  | (True | False | Lab _) as a -> a
  | Not a -> negative a
  | And (a, b) -> And (positive a, positive b)
  | Or (a, b) -> Or (positive a, positive b)
  | Exists p -> Exists (nnf_path p)
  | Cmp (p, op, q) -> Cmp (nnf_path p, op, nnf_path q)

and negative = function
  | True -> False
  | False -> True
  | Lab _ as a -> Not a
  | Not a -> positive a
  | And (a, b) -> Or (negative a, negative b)
  | Or (a, b) -> And (negative a, negative b)
  | Exists p -> Not (Exists (nnf_path p))
  | Cmp (p, op, q) -> Not (Cmp (nnf_path p, op, nnf_path q))

and nnf_path = function
  | Axis _ as p -> p
  | Seq (a, b) -> Seq (nnf_path a, nnf_path b)
  | Union (a, b) -> Union (nnf_path a, nnf_path b)
  | Filter (a, phi) -> Filter (nnf_path a, nnf phi)
  | Guard (phi, a) -> Guard (nnf phi, nnf_path a)
  | Star a -> Star (nnf_path a)

let rec path_is_empty = function
  | Axis _ -> false
  | Seq (a, b) -> path_is_empty a || path_is_empty b
  | Union (a, b) -> path_is_empty a && path_is_empty b
  | Filter (a, phi) -> path_is_empty a || phi = False
  | Guard (phi, a) -> path_is_empty a || phi = False
  | Star _ -> false (* reflexive: always contains the identity *)

let rec simplify phi =
  match phi with
  | True | False | Lab _ -> phi
  | Not a -> (
    match simplify a with
    | True -> False
    | False -> True
    | Not b -> b
    | b -> Not b)
  | And (a, b) -> (
    match (simplify a, simplify b) with
    | False, _ | _, False -> False
    | True, c | c, True -> c
    | c, d -> if c = d then c else And (c, d))
  | Or (a, b) -> (
    match (simplify a, simplify b) with
    | True, _ | _, True -> True
    | False, c | c, False -> c
    | c, d -> if c = d then c else Or (c, d))
  | Exists p ->
    let p = simplify_path p in
    if path_is_empty p then False
    else if never_fails p then True
    else Exists p
  | Cmp (p, op, q) ->
    let p = simplify_path p and q = simplify_path q in
    if path_is_empty p || path_is_empty q then False else Cmp (p, op, q)

(* [never_fails α]: [[α]] relates every node to at least one node, so
   ⟨α⟩ ≡ ⊤. Sound, not complete. *)
and never_fails = function
  | Axis Self | Axis Descendant -> true (* both are reflexive *)
  | Axis Child -> false
  | Seq (a, b) -> never_fails a && never_fails b
  | Union (a, b) -> never_fails a || never_fails b
  | Filter (a, phi) -> phi = True && never_fails a
  | Guard (phi, a) -> phi = True && never_fails a
  | Star _ -> true

and simplify_path p =
  match p with
  | Axis _ -> p
  | Seq (a, b) -> (
    match (simplify_path a, simplify_path b) with
    | Axis Self, c | c, Axis Self -> c
    | a, b -> Seq (a, b))
  | Union (a, b) -> (
    match (simplify_path a, simplify_path b) with
    | a, b when a = b -> a
    | a, b when path_is_empty a -> b
    | a, b when path_is_empty b -> a
    | a, b -> Union (a, b))
  | Filter (a, phi) -> (
    match (simplify_path a, simplify phi) with
    | a, True -> a
    | a, phi -> Filter (a, phi))
  | Guard (phi, a) -> (
    match (simplify phi, simplify_path a) with
    | True, a -> a
    | phi, a -> Guard (phi, a))
  | Star a -> (
    match simplify_path a with
    | Axis Self -> Axis Self
    | Star b -> Star b
    | Axis Child -> Axis Descendant
    | a -> Star a)

(* --- canonicalization (cache keys) ---

   [canonical] maps semantically-identical formulas that differ only in
   the order/grouping of commutative connectives to one representative:
   ∧/∨ chains and path unions are flattened, sorted and deduplicated,
   and the operands of [α ~ β] are ordered (the comparison is symmetric:
   it asks for {e some} pair of [α]/[β] endpoints with (un)equal data).
   Runs after {!simplify}, so the result is also constant-folded.
   Equality of canonical forms is the solver service's cache-key
   equivalence. *)

let rec flatten_and acc = function
  | And (a, b) -> flatten_and (flatten_and acc a) b
  | phi -> phi :: acc

let rec flatten_or acc = function
  | Or (a, b) -> flatten_or (flatten_or acc a) b
  | phi -> phi :: acc

let rec flatten_union acc = function
  | Union (a, b) -> flatten_union (flatten_union acc a) b
  | p -> p :: acc

let rebuild join = function
  | [] -> invalid_arg "Rewrite.rebuild: empty operand list"
  | x :: rest -> List.fold_left join x rest

let rec canon_node phi =
  match phi with
  | True | False | Lab _ -> phi
  | Not a -> Not (canon_node a)
  | And _ ->
    flatten_and [] phi |> List.map canon_node
    |> List.sort_uniq compare_node
    |> rebuild (fun a b -> And (a, b))
  | Or _ ->
    flatten_or [] phi |> List.map canon_node
    |> List.sort_uniq compare_node
    |> rebuild (fun a b -> Or (a, b))
  | Exists p -> Exists (canon_path p)
  | Cmp (p, op, q) ->
    let p = canon_path p and q = canon_path q in
    if compare_path p q <= 0 then Cmp (p, op, q) else Cmp (q, op, p)

and canon_path p =
  match p with
  | Axis _ -> p
  | Seq (a, b) -> Seq (canon_path a, canon_path b)
  | Union _ ->
    flatten_union [] p |> List.map canon_path
    |> List.sort_uniq compare_path
    |> rebuild (fun a b -> Union (a, b))
  | Filter (a, phi) -> Filter (canon_path a, canon_node phi)
  | Guard (phi, a) -> Guard (canon_node phi, canon_path a)
  | Star a -> Star (canon_path a)

let canonical phi = canon_node (simplify phi)
