(** Semantics-preserving rewriting of formulas.

    Used to normalize formulas before translation and to keep generated
    formulas (Theorem-5/Prop-8 encodings, random formulas) free of dead
    weight. Every rewrite preserves [[·]] on all data trees (property
    tested against {!Semantics}). *)

open Ast

val nnf : node -> node
(** Negation normal form: negations pushed down to labels, [⟨α⟩] and
    [α~β] (which have no dual in the logic and keep their negation),
    [¬¬ϕ] collapsed, De Morgan applied. *)

val simplify : node -> node
(** Bottom-up constant folding: boolean identities, filters/guards by
    [⊤] dropped, empty paths (e.g. [α[⊥]]) propagated into [⟨α⟩ ↦ ⊥] and
    [α~β ↦ ⊥], [ε∪α* ↦ α*], idempotent unions. The result is never
    larger than the input. *)

val simplify_path : path -> path
(** The path-level part of {!simplify}. *)

val canonical : node -> node
(** {!simplify} followed by order-normalization of the commutative
    connectives: [∧]/[∨] chains and path unions are flattened, sorted
    and deduplicated, and the (symmetric) operands of [α ~ β] are
    ordered. Semantics-preserving; two formulas that differ only in the
    order/grouping/multiplicity of commutative operands map to the same
    representative. Used by the solver service as its cache-key
    equivalence ({!Xpds_service.Cache_key}). *)

val path_is_empty : path -> bool
(** Syntactic emptiness: [[α]] = ∅ on every tree. Sound, not complete. *)
