module A = Xpds_xpath.Ast
module B = Xpds_xpath.Build
module Xml_doc = Xpds_datatree.Xml_doc

type path =
  | Self
  | Child
  | Descendant
  | Seq of path * path
  | Union of path * path
  | Filter of path * node
  | Guard of node * path
  | Star of path

and node =
  | True
  | False
  | Tag of string
  | Not of node
  | And of node * node
  | Or of node * node
  | Exists of path
  | Cmp of path * string * A.op * path * string

let attribute_names eta =
  let acc = ref [] in
  let add a = if not (List.mem a !acc) then acc := a :: !acc in
  let rec go_node = function
    | True | False | Tag _ -> ()
    | Not a -> go_node a
    | And (a, b) | Or (a, b) ->
      go_node a;
      go_node b
    | Exists p -> go_path p
    | Cmp (p, a1, _, q, a2) ->
      add a1;
      add a2;
      go_path p;
      go_path q
  and go_path = function
    | Self | Child | Descendant -> ()
    | Seq (p, q) | Union (p, q) ->
      go_path p;
      go_path q
    | Filter (p, n) ->
      go_path p;
      go_node n
    | Guard (n, p) ->
      go_node n;
      go_path p
    | Star p -> go_path p
  in
  go_node eta;
  List.rev !acc

let rec tr_path = function
  | Self -> A.Axis A.Self
  | Child -> A.Axis A.Child
  | Descendant -> A.Axis A.Descendant
  | Seq (p, q) -> A.Seq (tr_path p, tr_path q)
  | Union (p, q) -> A.Union (tr_path p, tr_path q)
  | Filter (p, n) -> A.Filter (tr_path p, tr n)
  | Guard (n, p) -> A.Guard (tr n, tr_path p)
  | Star p -> A.Star (tr_path p)

and tr = function
  | True -> A.True
  | False -> A.False
  | Tag t -> B.lab t
  | Not a -> A.Not (tr a)
  | And (a, b) -> A.And (tr a, tr b)
  | Or (a, b) -> A.Or (tr a, tr b)
  | Exists p -> A.Exists (tr_path p)
  | Cmp (p, a1, op, q, a2) ->
    (* α@a1 ~ β@a2  becomes  α↓[a1] ~ β↓[a2]. *)
    A.Cmp
      ( A.Seq (tr_path p, B.child_lab a1),
        op,
        A.Seq (tr_path q, B.child_lab a2) )

let attr_test attrs = B.disj (List.map B.lab attrs)

let phi_struct ~attrs =
  match attrs with
  | [] -> A.True
  | _ ->
    B.not_
      (B.somewhere (B.conj [ attr_test attrs; A.Exists (A.Axis A.Child) ]))

let phi_struct_bounded ~attrs ~depth =
  match attrs with
  | [] -> A.True
  | _ ->
    let rec down k = if k = 0 then A.Axis A.Self else A.Seq (A.Axis A.Child, down (k - 1)) in
    B.conj
      (List.init (depth + 2) (fun k ->
           B.not_
             (A.Exists
                (A.Filter
                   ( down k,
                     B.conj [ attr_test attrs; A.Exists (A.Axis A.Child) ]
                   )))))

let satisfiability_formula eta =
  let attrs = attribute_names eta in
  let translated = tr eta in
  let features = Xpds_xpath.Fragment.features translated in
  let struct_part =
    if features.Xpds_xpath.Fragment.uses_descendant
       || features.Xpds_xpath.Fragment.uses_star
    then phi_struct ~attrs
    else
      phi_struct_bounded ~attrs
        ~depth:(Xpds_xpath.Measure.down_depth translated)
  in
  B.conj [ translated; struct_part ]

(* --- direct reference semantics on XML documents --- *)

let check_doc doc eta =
  (* Index the document: each element gets an id; paths are relations on
     element ids. *)
  let nodes = ref [] in
  let kids = ref [] in
  let count = ref 0 in
  let rec index d =
    let id = !count in
    incr count;
    nodes := (id, d) :: !nodes;
    let children = List.map index d.Xml_doc.elements in
    kids := (id, children) :: !kids;
    id
  in
  let (_ : int) = index doc in
  let n = !count in
  let elements = Array.make n doc in
  List.iter (fun (id, d) -> elements.(id) <- d) !nodes;
  let children_ids = Array.make n [] in
  List.iter (fun (id, cs) -> children_ids.(id) <- cs) !kids;
  let module ISet = Set.Make (Int) in
  let rec desc_of x =
    List.fold_left
      (fun acc c -> ISet.union acc (desc_of c))
      (ISet.singleton x) children_ids.(x)
  in
  let desc = Array.init n desc_of in
  let rec eval_path p x : ISet.t =
    match p with
    | Self -> ISet.singleton x
    | Child -> ISet.of_list children_ids.(x)
    | Descendant -> desc.(x)
    | Seq (a, b) ->
      ISet.fold
        (fun y acc -> ISet.union acc (eval_path b y))
        (eval_path a x) ISet.empty
    | Union (a, b) -> ISet.union (eval_path a x) (eval_path b x)
    | Filter (a, phi) -> ISet.filter (fun y -> eval y phi) (eval_path a x)
    | Guard (phi, a) -> if eval x phi then eval_path a x else ISet.empty
    | Star a ->
      let visited = ref (ISet.singleton x) in
      let frontier = ref (ISet.singleton x) in
      while not (ISet.is_empty !frontier) do
        let next =
          ISet.fold
            (fun y acc -> ISet.union acc (eval_path a y))
            !frontier ISet.empty
        in
        let fresh = ISet.diff next !visited in
        visited := ISet.union !visited fresh;
        frontier := fresh
      done;
      !visited
  and eval x = function
    | True -> true
    | False -> false
    | Tag t -> elements.(x).Xml_doc.tag = t
    | Not a -> not (eval x a)
    | And (a, b) -> eval x a && eval x b
    | Or (a, b) -> eval x a || eval x b
    | Exists p -> not (ISet.is_empty (eval_path p x))
    | Cmp (p, a1, op, q, a2) ->
      let values path attr =
        (* All bindings of [attr], not just the first: the parser keeps
           duplicate attribute names, and the Appendix-A encoding emits
           one leaf per binding, so the direct semantics must quantify
           over every occurrence to agree with the encoded one. *)
        ISet.fold
          (fun y acc ->
            List.fold_left
              (fun acc (a, v) -> if a = attr then v :: acc else acc)
              acc elements.(y).Xml_doc.attrs)
          (eval_path path x) []
      in
      let vp = values p a1 and vq = values q a2 in
      (match op with
      | A.Eq -> List.exists (fun v -> List.mem v vq) vp
      | A.Neq ->
        List.exists (fun v -> List.exists (fun w -> v <> w) vq) vp)
  in
  eval 0 eta
