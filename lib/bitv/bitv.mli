(** Fixed-width immutable bit vectors — the shared set kernel of the
    automata and decision libraries.

    The decision procedures manipulate many small sets of automaton
    states (subsets of [K] and [Q]); extended states are hash-consed on
    them, and the emptiness fixpoint unions them millions of times. Bit
    vectors give O(width/63) set operations and cheap structural
    equality/hashing; the scans ([iter], [fold], [exists], [choose])
    skip zero words and extract set bits with lowest-set-bit arithmetic,
    and [cardinal] is a SWAR popcount, so their cost tracks the number
    of set bits rather than the width. All values of a given width are
    comparable; mixing widths raises [Invalid_argument].

    For accumulation loops, the {{!builders}mutable builder} API unions
    in place and freezes once, avoiding a full copy per element. *)

type t

val empty : int -> t
(** [empty width] is ∅ over the domain [0 .. width-1]. *)

val full : int -> t
(** [full width] is the whole domain. *)

val singleton : int -> int -> t
(** [singleton width i]. *)

val of_list : int -> int list -> t

val of_range : int -> lo:int -> hi:int -> t
(** [of_range width ~lo ~hi] is [{lo, lo+1, .., hi}], built with whole-word
    stores — the ↓∗ kernel of the bulk evaluator, where a pre-order-indexed
    subtree is a contiguous id interval. [hi < lo] yields ∅.
    @raise Invalid_argument when a nonempty range escapes the width. *)

val width : t -> int
val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
(** Short-circuits on the first nonzero word. *)

val subset : t -> t -> bool
(** [subset a b] — true iff every bit of [a] is in [b]; short-circuits
    on the first word of [a] escaping [b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] — [a ∩ b = ∅] without materializing the
    intersection; short-circuits on the first overlapping word. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Dedicated FNV-style mix over the whole word array (the polymorphic
    hash samples only a prefix). Non-negative; equal vectors hash
    equal. Suitable for [Hashtbl.Make]: [Bitv] itself satisfies
    [Hashtbl.HashedType]. *)

val cardinal : t -> int
val elements : t -> int list
(** Ascending. *)

val iter : (int -> unit) -> t -> unit
(** Visits set bits in ascending order, skipping zero words. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t

val choose : t -> int option
(** The lowest set bit, found without materializing [elements]. *)

(** {2:builders Mutable builders}

    A [builder] is a mutable word array of a fixed width. Hot loops
    (closure fixpoints, step-up unions, canonical merging keys)
    accumulate into one with {!add_in_place}/{!union_into} — O(1)
    amortized per bit, no intermediate copies — then {!freeze} it into
    an immutable {!t} once. Builders are single-owner scratch space:
    freezing copies, so a frozen result never aliases the builder. *)

type builder

val builder : int -> builder
(** [builder width] is an empty mutable set over [0 .. width-1]. *)

val builder_of : t -> builder
(** A builder seeded with the bits of [t] (copied). *)

val builder_width : builder -> int

val builder_reset : builder -> unit
(** Clear every bit, reusing the storage. *)

val add_in_place : int -> builder -> unit
val builder_mem : int -> builder -> bool

val add_range_in_place : lo:int -> hi:int -> builder -> unit
(** OR the whole interval [lo..hi] into the builder with word-level
    stores; a no-op when [hi < lo].
    @raise Invalid_argument when a nonempty range escapes the width. *)

val union_into : t -> builder -> bool
(** [union_into src b] ORs [src] into [b]; returns whether [b] gained a
    bit (the "changed" test of a saturation loop).
    @raise Invalid_argument on width mismatch. *)

val freeze : builder -> t
(** An immutable snapshot (copy) of the builder's current contents. *)

val of_rows : row_width:int -> t array -> t
(** [of_rows ~row_width rows] concatenates equal-width rows into one
    vector of width [row_width * Array.length rows]: bit [i·row_width+j]
    is bit [j] of [rows.(i)]. Used to flatten K×K boolean matrices.
    Word-level (shift-or), not per-bit.
    @raise Invalid_argument if some row has a different width. *)

val row : t -> row_width:int -> int -> t
(** [row m ~row_width i] extracts row [i] of a matrix flattened by
    {!of_rows}. *)

val row_disjoint : t -> row_width:int -> int -> t -> bool
(** [row_disjoint m ~row_width i v] — row [i] of the flattened matrix
    [m] is disjoint from [v], without materializing the row. *)

val union_into_row : t -> row_width:int -> int -> builder -> unit
(** [union_into_row src ~row_width i b] ORs [src] into row [i] of the
    flattened-matrix builder [b] (width a multiple of [row_width]) —
    one {!of_rows} step, in place.
    @raise Invalid_argument on width mismatch or row out of bounds. *)

val union_rows_into : t -> rows:t -> row_width:int -> builder -> unit
(** [union_rows_into src ~rows ~row_width b] ORs [src] into row [i] of
    [b] for every [i ∈ rows] — the outer-product fill [rows × src] of a
    flattened matrix, without a per-row closure.
    @raise Invalid_argument on width mismatch or rows out of bounds. *)

val pp : Format.formatter -> t -> unit
