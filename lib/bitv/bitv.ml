(* Fixed-width immutable bit vectors, shared by the automata and decision
   libraries (the emptiness engine's set kernel).

   Representation: a [width] plus an array of [Sys.int_size]-bit words;
   bits at positions >= width are kept at 0 (an invariant every operation
   preserves), so equality, hashing and emptiness are plain word
   comparisons. The scanning operations skip zero words and extract set
   bits with lowest-set-bit arithmetic ([w land (-w)]) instead of probing
   every position, and [cardinal] uses a SWAR popcount — on the sparse
   sets the decision procedures manipulate this is the difference between
   O(width) and O(set bits) per scan. *)

type t = { width : int; bits : int array; mutable h : int }
(* [h] caches {!hash} (computed on first use; -1 = not yet). The
   decision procedures key many memo tables on bit vectors and look the
   same physical vector up over and over; benign if two domains race to
   fill it, since both write the same value. *)

let bits_per_word = Sys.int_size (* 63 on 64-bit *)
let words width = (width + bits_per_word - 1) / bits_per_word

(* SWAR popcount adapted to OCaml's 63-bit words: the usual 64-bit
   constants do not fit in an int literal, but the top (sign) bit is just
   another data bit here, and truncating the odd-bit mask to bit 61
   still covers every odd position of a 63-bit word. *)
let popcount w =
  let x = w - ((w lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

(* Number of trailing zeros of a one-bit word [b] (a power of two). *)
let ntz_pow2 b = popcount (b - 1)

let empty width =
  if width < 0 then invalid_arg "Bitv.empty: negative width";
  { width; bits = Array.make (words width) 0; h = -1 }

let check_index t i =
  if i < 0 || i >= t.width then
    invalid_arg
      (Printf.sprintf "Bitv: index %d out of bounds (width %d)" i t.width)

let check_same a b =
  if a.width <> b.width then invalid_arg "Bitv: width mismatch"

let full width =
  if width < 0 then invalid_arg "Bitv.full: negative width";
  let n = words width in
  let bits = Array.make n (-1) in
  let tail = width mod bits_per_word in
  if n > 0 && tail > 0 then bits.(n - 1) <- (1 lsl tail) - 1;
  { width; bits; h = -1 }

let mem i t =
  check_index t i;
  t.bits.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add i t =
  check_index t i;
  let bits = Array.copy t.bits in
  bits.(i / bits_per_word) <-
    bits.(i / bits_per_word) lor (1 lsl (i mod bits_per_word));
  { t with bits; h = -1 }

let remove i t =
  check_index t i;
  let bits = Array.copy t.bits in
  bits.(i / bits_per_word) <-
    bits.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word));
  { t with bits; h = -1 }

let singleton width i = add i (empty width)
let of_list width l = List.fold_left (fun acc i -> add i acc) (empty width) l
let width t = t.width

(* Word-level range fill: interior words are written whole, so filling
   [lo..hi] costs O((hi-lo)/word) instead of one masked store per bit.
   This is the ↓∗ kernel of the bulk evaluator — in a pre-order-indexed
   document a subtree is the contiguous interval
   [x .. x + size(x) - 1]. *)
let fill_range bits lo hi =
  let wlo = lo / bits_per_word and whi = hi / bits_per_word in
  let mlo = -1 lsl (lo mod bits_per_word) in
  (* bits [0 .. hi mod word] of the last word *)
  let mhi =
    let tail = (hi mod bits_per_word) + 1 in
    if tail = bits_per_word then -1 else (1 lsl tail) - 1
  in
  if wlo = whi then bits.(wlo) <- bits.(wlo) lor (mlo land mhi)
  else begin
    bits.(wlo) <- bits.(wlo) lor mlo;
    for w = wlo + 1 to whi - 1 do
      bits.(w) <- -1
    done;
    bits.(whi) <- bits.(whi) lor mhi
  end

let of_range width ~lo ~hi =
  if width < 0 then invalid_arg "Bitv.of_range: negative width";
  if lo <= hi && (lo < 0 || hi >= width) then
    invalid_arg
      (Printf.sprintf "Bitv.of_range: [%d..%d] out of bounds (width %d)" lo
         hi width);
  let bits = Array.make (words width) 0 in
  if lo <= hi then fill_range bits lo hi;
  { width; bits; h = -1 }

let union a b =
  check_same a b;
  let n = Array.length a.bits in
  let bits = Array.make n 0 in
  for i = 0 to n - 1 do
    bits.(i) <- a.bits.(i) lor b.bits.(i)
  done;
  { width = a.width; bits; h = -1 }

let inter a b =
  check_same a b;
  let n = Array.length a.bits in
  let bits = Array.make n 0 in
  for i = 0 to n - 1 do
    bits.(i) <- a.bits.(i) land b.bits.(i)
  done;
  { width = a.width; bits; h = -1 }

let diff a b =
  check_same a b;
  let n = Array.length a.bits in
  let bits = Array.make n 0 in
  for i = 0 to n - 1 do
    bits.(i) <- a.bits.(i) land lnot b.bits.(i)
  done;
  { width = a.width; bits; h = -1 }

let is_empty t =
  let n = Array.length t.bits in
  let rec go i = i >= n || (t.bits.(i) = 0 && go (i + 1)) in
  go 0

let disjoint a b =
  check_same a b;
  let n = Array.length a.bits in
  let rec go i = i >= n || (a.bits.(i) land b.bits.(i) = 0 && go (i + 1)) in
  go 0

(* Short-circuits on the first word of [a] with a bit outside [b]. *)
let subset a b =
  check_same a b;
  let n = Array.length a.bits in
  let rec go i = i >= n || (a.bits.(i) land lnot b.bits.(i) = 0 && go (i + 1)) in
  go 0

let equal a b =
  a.width = b.width
  &&
  let n = Array.length a.bits in
  let rec go i = i >= n || (a.bits.(i) = b.bits.(i) && go (i + 1)) in
  go 0

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c
  else
    let n = Array.length a.bits in
    let rec go i =
      if i >= n then 0
      else
        let c = Int.compare a.bits.(i) b.bits.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

(* Dedicated mixer (FNV-style over words): the polymorphic hash samples
   only a prefix of the word array and hashes boxed structure; the
   decision tables key on bit vectors heavily enough for that to show. *)
let hash t =
  if t.h >= 0 then t.h
  else begin
    let h = ref (t.width + 0x64) in
    for i = 0 to Array.length t.bits - 1 do
      let w = t.bits.(i) in
      (* fold the 63-bit word into 31-bit halves before mixing, so the
         result is stable across int sizes that can represent it *)
      let w = w lxor (w lsr 31) in
      h := (!h lxor (w land 0x3FFFFFFF)) * 0x01000193
    done;
    let h = !h land max_int in
    t.h <- h;
    h
  end

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.bits

(* Word-skipping scan: visit only set bits, lowest first. *)
let iter f t =
  let bits = t.bits in
  for wi = 0 to Array.length bits - 1 do
    let w = ref bits.(wi) in
    if !w <> 0 then begin
      let base = wi * bits_per_word in
      while !w <> 0 do
        let b = !w land - !w in
        f (base + ntz_pow2 b);
        w := !w lxor b
      done
    end
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let exists p t =
  let n = Array.length t.bits in
  let rec go_word wi =
    wi < n
    &&
    let rec go_bits w base =
      w <> 0
      &&
      let b = w land -w in
      p (base + ntz_pow2 b) || go_bits (w lxor b) base
    in
    go_bits t.bits.(wi) (wi * bits_per_word) || go_word (wi + 1)
  in
  go_word 0

let for_all p t = not (exists (fun i -> not (p i)) t)

let choose t =
  let n = Array.length t.bits in
  let rec go wi =
    if wi >= n then None
    else
      let w = t.bits.(wi) in
      if w = 0 then go (wi + 1)
      else Some ((wi * bits_per_word) + ntz_pow2 (w land -w))
  in
  go 0

(* --- mutable builders -------------------------------------------------

   The fixpoint loops (pathfinder closure, step-up unions, merging keys)
   accumulate into one set across many small unions; doing that with the
   immutable API costs a full-array copy per element added. A builder is
   a private word array mutated in place and [freeze]d (copied) into an
   immutable value once, when the loop is done. *)

type builder = { b_width : int; b_bits : int array }

let builder width =
  if width < 0 then invalid_arg "Bitv.builder: negative width";
  { b_width = width; b_bits = Array.make (words width) 0 }

let builder_of t = { b_width = t.width; b_bits = Array.copy t.bits }

let builder_width b = b.b_width

let builder_reset b = Array.fill b.b_bits 0 (Array.length b.b_bits) 0

let add_in_place i b =
  if i < 0 || i >= b.b_width then
    invalid_arg
      (Printf.sprintf "Bitv.add_in_place: index %d out of bounds (width %d)" i
         b.b_width);
  b.b_bits.(i / bits_per_word) <-
    b.b_bits.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let builder_mem i b =
  i >= 0 && i < b.b_width
  && b.b_bits.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add_range_in_place ~lo ~hi b =
  if lo > hi then ()
  else if lo < 0 || hi >= b.b_width then
    invalid_arg
      (Printf.sprintf
         "Bitv.add_range_in_place: [%d..%d] out of bounds (width %d)" lo hi
         b.b_width)
  else fill_range b.b_bits lo hi

(* OR [src] into [b]; reports whether [b] gained any bit (the natural
   "changed" test of a saturation loop). *)
let union_into src b =
  if src.width <> b.b_width then invalid_arg "Bitv.union_into: width mismatch";
  let changed = ref false in
  for i = 0 to Array.length src.bits - 1 do
    let cur = b.b_bits.(i) in
    let w = cur lor src.bits.(i) in
    if w <> cur then begin
      b.b_bits.(i) <- w;
      changed := true
    end
  done;
  !changed

let freeze b = { width = b.b_width; bits = Array.copy b.b_bits; h = -1 }

(* --- flattened boolean matrices -------------------------------------- *)

let of_rows ~row_width rows =
  Array.iter
    (fun r ->
      if r.width <> row_width then invalid_arg "Bitv.of_rows: width mismatch")
    rows;
  let width = row_width * Array.length rows in
  let bits = Array.make (words width) 0 in
  Array.iteri
    (fun i r ->
      let base = i * row_width in
      let d0 = base / bits_per_word and sh = base mod bits_per_word in
      Array.iteri
        (fun j w ->
          if w <> 0 then begin
            let d = d0 + j in
            bits.(d) <- bits.(d) lor (w lsl sh);
            if sh > 0 then begin
              let spill = w lsr (bits_per_word - sh) in
              if spill <> 0 then bits.(d + 1) <- bits.(d + 1) lor spill
            end
          end)
        r.bits)
    rows;
  { width; bits; h = -1 }

(* OR a row into a flattened-matrix builder at row [i] — the in-place
   counterpart of one [of_rows] step, for hot loops that assemble a
   matrix without materializing per-row vectors. *)
let union_into_row_unsafe src ~row_width i b =
  let bits = b.b_bits in
  let sbits = src.bits in
  let base = i * row_width in
  let d0 = base / bits_per_word and sh = base mod bits_per_word in
  for j = 0 to Array.length sbits - 1 do
    let w = sbits.(j) in
    if w <> 0 then begin
      let d = d0 + j in
      bits.(d) <- bits.(d) lor (w lsl sh);
      if sh > 0 then begin
        let spill = w lsr (bits_per_word - sh) in
        if spill <> 0 then bits.(d + 1) <- bits.(d + 1) lor spill
      end
    end
  done

let union_into_row src ~row_width i b =
  if src.width <> row_width then
    invalid_arg "Bitv.union_into_row: width mismatch";
  if i < 0 || ((i + 1) * row_width) > b.b_width then
    invalid_arg "Bitv.union_into_row: row out of bounds";
  union_into_row_unsafe src ~row_width i b

(* The outer-product kernel of the transition's matrix fill: OR [src]
   into row [i] for every [i ∈ rows], word-skipping over [rows] with no
   per-bit closure. *)
let union_rows_into src ~rows ~row_width b =
  if src.width <> row_width then
    invalid_arg "Bitv.union_rows_into: width mismatch";
  if rows.width * row_width > b.b_width then
    invalid_arg "Bitv.union_rows_into: rows out of bounds";
  let rbits = rows.bits in
  for wi = 0 to Array.length rbits - 1 do
    let w = ref rbits.(wi) in
    if !w <> 0 then begin
      let base = wi * bits_per_word in
      while !w <> 0 do
        let bbit = !w land - !w in
        union_into_row_unsafe src ~row_width (base + ntz_pow2 bbit) b;
        w := !w lxor bbit
      done
    end
  done

(* Row-vs-vector disjointness without materializing the row: the word
   extraction of [row] fused with the overlap test, short-circuiting. *)
let row_disjoint m ~row_width i v =
  if v.width <> row_width then
    invalid_arg "Bitv.row_disjoint: width mismatch";
  let base = i * row_width in
  let nm = Array.length m.bits in
  let n = Array.length v.bits in
  let rec go j =
    j >= n
    || begin
         let p = base + (j * bits_per_word) in
         let d = p / bits_per_word and sh = p mod bits_per_word in
         let w = if d >= 0 && d < nm then m.bits.(d) lsr sh else 0 in
         let w =
           if sh > 0 && d + 1 >= 0 && d + 1 < nm then
             w lor (m.bits.(d + 1) lsl (bits_per_word - sh))
           else w
         in
         w land v.bits.(j) = 0 && go (j + 1)
       end
  in
  go 0

let row m ~row_width i =
  if row_width < 0 then invalid_arg "Bitv.row: negative width";
  let n = words row_width in
  let bits = Array.make n 0 in
  let base = i * row_width in
  let nm = Array.length m.bits in
  for j = 0 to n - 1 do
    let p = base + (j * bits_per_word) in
    let d = p / bits_per_word and sh = p mod bits_per_word in
    let w = if d >= 0 && d < nm then m.bits.(d) lsr sh else 0 in
    let w =
      if sh > 0 && d + 1 >= 0 && d + 1 < nm then
        w lor (m.bits.(d + 1) lsl (bits_per_word - sh))
      else w
    in
    bits.(j) <- w
  done;
  (* Clear anything beyond [row_width] (from the next row, or from the
     matrix tail). *)
  let tail = row_width mod bits_per_word in
  if n > 0 && tail > 0 then bits.(n - 1) <- bits.(n - 1) land ((1 lsl tail) - 1);
  { width = row_width; bits; h = -1 }

let filter p t =
  let b = builder t.width in
  iter (fun i -> if p i then add_in_place i b) t;
  freeze b

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (elements t)
