module Service = Xpds_service.Service
module Engine = Xpds_service.Engine
module Admission = Xpds_service.Admission
module Metrics = Xpds_service.Metrics
module Cache_key = Xpds_service.Cache_key
module Trace = Xpds_service.Trace
module Containment = Xpds_decision.Containment
module Doctype = Xpds_automata.Doctype

(* --- routing --- *)

let shard_of_key ~shards (key : Cache_key.t) =
  if shards <= 1 then 0
  else
    let b i = Char.code key.[i] in
    (* an MD5 digest is uniform; three bytes give 2^24 buckets, far
       more than any realistic shard count *)
    ((b 0 lsl 16) lor (b 1 lsl 8) lor b 2) mod shards

type route = To of int | Fanout of { fwd : int; bwd : int }

let contains_key ~config_fingerprint phi psi =
  snd
    (Cache_key.make ~kind:"contains" ~config_fingerprint
       (Containment.query phi psi))

(* The raw pieces the router needs from a request line: where it goes,
   which id to echo on shed/abort errors, which deadline admission
   reasons about, and — for equiv — the raw formula strings of the two
   fanned-out contains sub-requests. *)
type plan = {
  pl_route : route;
  pl_id : string option;
  pl_timeout_ms : float option;
  pl_fanout : (string * string) option;  (** raw (phi, psi) of an equiv *)
}

let raw_str field line =
  match Json.parse line with
  | Ok v -> (
    match Json.member field v with Some (Json.Str s) -> Some s | _ -> None)
  | Error _ -> None

let plan_of_line ~config_fingerprint ~shards line =
  match Service.wire_request_of_json line with
  | Ok (Service.Sat_request r) ->
    { pl_route =
        To
          (shard_of_key ~shards
             (snd (Cache_key.make ~config_fingerprint r.formula)));
      pl_id = Some r.id;
      pl_timeout_ms = r.timeout_ms;
      pl_fanout = None
    }
  | Ok (Service.Contains_request r) ->
    { pl_route =
        To (shard_of_key ~shards (contains_key ~config_fingerprint r.phi r.psi));
      pl_id = Some r.ct_id;
      pl_timeout_ms = r.ct_timeout_ms;
      pl_fanout = None
    }
  | Ok (Service.Doctype_request r) ->
    { pl_route =
        To
          (shard_of_key ~shards
             (snd
                (Cache_key.make ~kind:"sat_under_doctype"
                   ~salt:(Doctype.canonical_string r.dt_rules)
                   ~config_fingerprint r.dt_formula)));
      pl_id = Some r.dt_id;
      pl_timeout_ms = r.dt_timeout_ms;
      pl_fanout = None
    }
  | Ok (Service.Eval_request r) ->
    (* routed for cache affinity: the same (document, query) pair
       always revisits the same worker's eval cache *)
    let salt =
      match r.source with
      | Service.Doc_named n -> "n:" ^ n
      | Service.Doc_xml s -> "x:" ^ s
      | Service.Doc_tree s -> "t:" ^ s
    in
    { pl_route =
        To
          (shard_of_key ~shards
             (snd (Cache_key.make ~kind:"eval" ~salt ~config_fingerprint r.query)));
      pl_id = Some r.ev_id;
      pl_timeout_ms = r.ev_timeout_ms;
      pl_fanout = None
    }
  | Ok (Service.Equiv_request r) ->
    let fwd = contains_key ~config_fingerprint r.eq_phi r.eq_psi in
    let bwd = contains_key ~config_fingerprint r.eq_psi r.eq_phi in
    { pl_route =
        Fanout
          { fwd = shard_of_key ~shards fwd; bwd = shard_of_key ~shards bwd };
      pl_id = Some r.eq_id;
      pl_timeout_ms = r.eq_timeout_ms;
      pl_fanout =
        (match (raw_str "phi" line, raw_str "psi" line) with
        | Some phi, Some psi -> Some (phi, psi)
        | _ -> None)
    }
  | Error _ ->
    (* any worker answers the same structured error; hash the raw text
       so garbage spreads deterministically *)
    { pl_route = To (shard_of_key ~shards (Digest.string line));
      pl_id = raw_str "id" line;
      pl_timeout_ms = None;
      pl_fanout = None
    }

let route_line ~config_fingerprint ~shards line =
  (plan_of_line ~config_fingerprint ~shards line).pl_route

(* --- metrics aggregation --- *)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

let averaged_keys = [ "mean"; "p50"; "p95"; "p99"; "est_ms" ]

(* Latency-shape fields carry each numeric leaf's weight — its source
   snapshot's top-level request count — so a shard that served 10,000
   requests dominates one that served 10 instead of counting the same.
   Merged percentiles remain approximations either way (an average of
   per-shard p95s is not the fleet p95); the router section labels
   them as such. *)
let combine_nums key (xs : (float * float) list) =
  match xs with
  | [] -> 0.
  | (_, hd) :: _ ->
    let k = String.lowercase_ascii key in
    if contains_sub k "min" then
      List.fold_left (fun acc (_, x) -> Float.min acc x) hd xs
    else if contains_sub k "max" then
      List.fold_left (fun acc (_, x) -> Float.max acc x) hd xs
    else if List.mem k averaged_keys then begin
      let wsum = List.fold_left (fun acc (w, _) -> acc +. w) 0. xs in
      if wsum > 0. then
        List.fold_left (fun acc (w, x) -> acc +. (w *. x)) 0. xs /. wsum
      else
        (* all-idle shards: any weighting degenerates; plain average *)
        List.fold_left (fun acc (_, x) -> acc +. x) 0. xs
        /. float_of_int (List.length xs)
    end
    else List.fold_left (fun acc (_, x) -> acc +. x) 0. xs

let rec merge_values ~key (vs : (float * Json.t) list) =
  match vs with
  | [] -> Json.Null
  | (_, Json.Obj _) :: _ ->
    let objs =
      List.filter_map
        (function w, Json.Obj f -> Some (w, f) | _ -> None)
        vs
    in
    (* union of keys, in first-appearance order *)
    let keys =
      List.fold_left
        (fun acc (_, fields) ->
          List.fold_left
            (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
            acc fields)
        [] objs
    in
    Json.Obj
      (List.map
         (fun k ->
           ( k,
             merge_values ~key:k
               (List.filter_map
                  (fun (w, fields) ->
                    Option.map (fun v -> (w, v)) (List.assoc_opt k fields))
                  objs) ))
         keys)
  | (_, Json.Num _) :: _ ->
    Json.Num
      (combine_nums key
         (List.filter_map
            (function w, Json.Num x -> Some (w, x) | _ -> None)
            vs))
  | (_, v) :: _ -> v

let snapshot_weight snap =
  match Json.member "requests" snap with
  | Some (Json.Num n) when n >= 0. -> n
  | _ -> 1.

let merge_metrics snaps =
  merge_values ~key:""
    (List.map (fun s -> (snapshot_weight s, s)) snaps)

(* --- the worker child --- *)

let sentinel = "#xpds:metrics"

(* Control lines are intercepted here, before [handle_line], so the
   wire protocol itself stays exactly v1 — a client talking to a shard
   directly could never send one by accident ('#' opens no JSON). *)
let worker_loop ~svc ~default_timeout_ms ~trace in_fd out_fd =
  let ic = Unix.in_channel_of_descr in_fd in
  let oc = Unix.out_channel_of_descr out_fd in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> Unix._exit 0
    | line when String.trim line = "" -> loop ()
    | line when line = sentinel ->
      output_string oc
        (sentinel ^ " "
        ^ Json.to_string (Metrics.to_json (Service.metrics svc)));
      output_char oc '\n';
      flush oc;
      loop ()
    | line ->
      output_string oc (Service.handle_line ?default_timeout_ms ~trace svc line);
      output_char oc '\n';
      flush oc;
      loop ()
  in
  loop ()

(* --- the router --- *)

type dir = Fwd | Bwd

(* Router-side correlation of an equiv's two fanned-out directions. *)
type equiv_cell = {
  eq_id : string;
  eq_start : float;
  mutable fwd_resp : Json.t option;
  mutable bwd_resp : Json.t option;
  mutable eq_settled : bool;  (** merged response (or abort error) emitted *)
}

type pending =
  | P_plain  (** worker response line forwarded verbatim *)
  | P_dir of equiv_cell * dir
  | P_probe of Json.t option ref  (** metrics sentinel reply slot *)

type entry = {
  line : string;
  pend : pending;
  admitted : bool;  (** went through admission (probes bypass it) *)
  enq_ms : float;
}

type worker = {
  w_index : int;
  mutable pid : int;
  mutable wfd : Unix.file_descr;  (** router -> worker requests *)
  mutable rfd : Unix.file_descr;  (** worker -> router responses *)
  mutable w_alive : bool;
  unsent : entry Queue.t;
  mutable woff : int;  (** bytes of the head unsent line already written *)
  sent : entry Queue.t;  (** fully written, awaiting response (FIFO) *)
  rbuf : Buffer.t;  (** partial response line *)
  adm : Admission.t;
  mutable last_done : float;
      (** when this worker's previous response landed; the
          service-time sample of a response is measured from
          [max enq_ms last_done] — under FIFO that is when the worker
          actually started on it *)
  mutable routed : int;
}

type t = {
  fingerprint : string;
  default_timeout_ms : float option;
  trace : bool;
  chaos_crash_id : string option;
  make_service : shard:int -> Service.t;
  emit : string -> unit;
  workers : worker array;
  rdbuf : Bytes.t;
  mutable restarts : int;
  mutable closed : bool;
}

let protocol_v = float_of_int Service.protocol_version
let round_ms ms = Json.Num (Float.round (ms *. 1000.) /. 1000.)

let emit_overloaded t ~id ~retry_after_ms =
  t.emit
    (Json.to_string
       (Json.Obj
          ([ ("v", Json.Num protocol_v) ]
          @ (match id with Some i -> [ ("id", Json.Str i) ] | None -> [])
          @ [ ("error", Json.Str "overloaded");
              ("retry_after_ms", Json.Num (Float.round retry_after_ms))
            ])))

let dead_worker_error = "shard worker died; request aborted (worker respawned)"

(* --- the child side of a fork --- *)

let fork_worker t i ~req_r ~req_w ~resp_r ~resp_w =
  (* buffered channel data must not be flushed twice, once per process *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try
       Unix.close req_w;
       Unix.close resp_r;
       (* drop the parent ends of every other live worker's pipes, so a
          dead sibling's pipe reads EOF as soon as the router closes it *)
       Array.iter
         (fun w ->
           if w.w_index <> i && w.w_alive then begin
             (try Unix.close w.wfd with Unix.Unix_error _ -> ());
             try Unix.close w.rfd with Unix.Unix_error _ -> ()
           end)
         t.workers;
       let svc = t.make_service ~shard:i in
       (match t.chaos_crash_id with
       | Some cid ->
         Service.Chaos.set svc
           (Some (fun id -> if id = cid then Unix._exit 66))
       | None -> ());
       worker_loop ~svc ~default_timeout_ms:t.default_timeout_ms
         ~trace:t.trace req_r resp_w
     with _ -> Unix._exit 2);
    assert false
  | pid -> pid

let spawn t i =
  let w = t.workers.(i) in
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let pid = fork_worker t i ~req_r ~req_w ~resp_r ~resp_w in
  Unix.close req_r;
  Unix.close resp_w;
  Unix.set_nonblock req_w;
  Unix.set_nonblock resp_r;
  w.pid <- pid;
  w.wfd <- req_w;
  w.rfd <- resp_r;
  w.w_alive <- true;
  w.woff <- 0;
  w.last_done <- Trace.now_ms ();
  Buffer.clear w.rbuf

(* --- response handling --- *)

let direction_of_line line =
  (* a contains response minus its envelope (v, id, kind) is exactly
     the equiv direction object of the in-process serializer *)
  match Json.parse line with
  | Ok (Json.Obj fields) ->
    Json.Obj
      (List.filter (fun (k, _) -> k <> "v" && k <> "id" && k <> "kind") fields)
  | _ ->
    Json.Obj
      [ ("answer", Json.Str "unknown");
        ("reason", Json.Str "unparsable shard response")
      ]

let settle_cell t cell =
  match (cell.fwd_resp, cell.bwd_resp) with
  | Some f, Some b when not cell.eq_settled ->
    cell.eq_settled <- true;
    let settled_dir j =
      match Json.member "answer" j with
      | Some (Json.Str ("holds" | "holds_bounded")) -> Some true
      | Some (Json.Str "fails") -> Some false
      | _ -> None
    in
    (* one failing direction settles non-equivalence even when the
       other is unknown — same rule as the in-process serializer *)
    let equivalent =
      match (settled_dir f, settled_dir b) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None
    in
    t.emit
      (Json.to_string
         (Json.Obj
            ([ ("v", Json.Num protocol_v);
               ("id", Json.Str cell.eq_id);
               ("kind", Json.Str "equiv")
             ]
            @ (match equivalent with
              | Some b -> [ ("equivalent", Json.Bool b) ]
              | None -> [])
            @ [ ("forward", f);
                ("backward", b);
                ("ms", round_ms (Trace.now_ms () -. cell.eq_start))
              ])))
  | _ -> ()

let handle_response t w line =
  match Queue.take_opt w.sent with
  | None -> ()  (* a stray line; FIFO means this cannot happen *)
  | Some e ->
    let now = Trace.now_ms () in
    let started = Float.max e.enq_ms w.last_done in
    w.last_done <- now;
    if e.admitted then Admission.complete w.adm ~service_ms:(now -. started);
    (match e.pend with
    | P_plain -> t.emit line
    | P_dir (cell, d) ->
      let dirobj = direction_of_line line in
      (match d with
      | Fwd -> cell.fwd_resp <- Some dirobj
      | Bwd -> cell.bwd_resp <- Some dirobj);
      settle_cell t cell
    | P_probe slot ->
      let n = String.length sentinel in
      let payload =
        if
          String.length line > n + 1
          && String.sub line 0 n = sentinel
        then String.sub line (n + 1) (String.length line - n - 1)
        else line
      in
      (match Json.parse payload with
      | Ok j -> slot := Some j
      | Error _ -> slot := Some (Json.Obj [])))

(* --- worker death and respawn --- *)

let fail_entry ?(msg = dead_worker_error) t w e =
  if e.admitted then Admission.abandon w.adm;
  match e.pend with
  | P_probe slot -> slot := Some (Json.Obj [])
  | P_plain ->
    let id = raw_str "id" e.line in
    t.emit (Service.error_to_json ?id msg)
  | P_dir (cell, _) ->
    if not cell.eq_settled then begin
      cell.eq_settled <- true;
      t.emit (Service.error_to_json ~id:cell.eq_id msg)
    end

(* A worker that keeps dying on arrival (say, its per-shard store path
   is unopenable) must not put the router into an infinite
   fork-EOF-fork loop: past the cap the shard stays down and its
   requests answer structured errors at submission. *)
let max_restarts = 64

let worker_died t w =
  if w.w_alive then begin
    w.w_alive <- false;
    (try Unix.close w.wfd with Unix.Unix_error _ -> ());
    (try Unix.close w.rfd with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
    t.restarts <- t.restarts + 1;
    Buffer.clear w.rbuf;
    w.woff <- 0;
    Queue.iter (fail_entry t w) w.sent;
    Queue.clear w.sent;
    Queue.iter (fail_entry t w) w.unsent;
    Queue.clear w.unsent;
    if (not t.closed) && t.restarts <= max_restarts then spawn t w.w_index
  end

(* --- nonblocking I/O pumping --- *)

let rec try_write t w =
  if w.w_alive then
    match Queue.peek_opt w.unsent with
    | None -> ()
    | Some e -> (
      let data = e.line ^ "\n" in
      let len = String.length data in
      match
        Unix.single_write_substring w.wfd data w.woff (len - w.woff)
      with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        -> ()
      | exception Unix.Unix_error (_, _, _) -> worker_died t w
      | n ->
        w.woff <- w.woff + n;
        if w.woff >= len then begin
          w.woff <- 0;
          ignore (Queue.pop w.unsent);
          Queue.push e w.sent;
          try_write t w
        end)

let drain_lines t w =
  let s = Buffer.contents w.rbuf in
  let rec go start =
    match String.index_from_opt s start '\n' with
    | None ->
      Buffer.clear w.rbuf;
      Buffer.add_substring w.rbuf s start (String.length s - start)
    | Some i ->
      handle_response t w (String.sub s start (i - start));
      go (i + 1)
  in
  go 0

let try_read t w =
  if w.w_alive then
    match Unix.read w.rfd t.rdbuf 0 (Bytes.length t.rdbuf) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
    | exception Unix.Unix_error (_, _, _) -> worker_died t w
    | 0 -> worker_died t w
    | n ->
      Buffer.add_subbytes w.rbuf t.rdbuf 0 n;
      drain_lines t w

(* One select over the worker pipes plus any caller-supplied read fds
   ([extra_rds] — the serve loop passes stdin), returning the readable
   subset of the extras. Folding the caller's input source into the
   same select is what keeps a synchronous client alive: a response
   becomes ready while the router is otherwise idle waiting for input,
   and it must be emitted then, not at the next submission. *)
let pump_io ?(extra_rds = []) t ~timeout =
  let rds, wrs =
    Array.fold_left
      (fun (rds, wrs) w ->
        if not w.w_alive then (rds, wrs)
        else
          ( w.rfd :: rds,
            if Queue.is_empty w.unsent then wrs else w.wfd :: wrs ))
      (extra_rds, []) t.workers
  in
  if rds = [] && wrs = [] then []
  else
    match Unix.select rds wrs [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    | rds', wrs', _ ->
      (* a death inside a handler closes fds and respawns with fresh
         ones, so match ready fds against the *current* worker state
         and skip anything stale *)
      List.iter
        (fun fd ->
          Array.iter
            (fun w -> if w.w_alive && w.rfd == fd then try_read t w)
            t.workers)
        rds';
      List.iter
        (fun fd ->
          Array.iter
            (fun w -> if w.w_alive && w.wfd == fd then try_write t w)
            t.workers)
        wrs';
      List.filter (fun fd -> List.memq fd rds') extra_rds

let pending t =
  Array.fold_left
    (fun acc w -> acc + Queue.length w.unsent + Queue.length w.sent)
    0 t.workers

let drain t =
  while pending t > 0 do
    ignore (pump_io t ~timeout:0.25)
  done

(* --- submission --- *)

let push t w e =
  if not w.w_alive then fail_entry t w e
  else begin
    Queue.push e w.unsent;
    try_write t w;
    (* opportunistically collect any responses already waiting, so a
       fast submit loop cannot fill the response pipes *)
    ignore (pump_io t ~timeout:0.)
  end

let contains_line ~id ~phi ~psi ~timeout_ms =
  Json.to_string
    (Json.Obj
       ([ ("v", Json.Num protocol_v);
          ("id", Json.Str id);
          ("kind", Json.Str "contains");
          ("phi", Json.Str phi);
          ("psi", Json.Str psi)
        ]
       @
       match timeout_ms with
       | Some ms -> [ ("timeout_ms", Json.Num ms) ]
       | None -> []))

let submit t line =
  if String.trim line <> "" then begin
    let now = Trace.now_ms () in
    let shards = Array.length t.workers in
    let plan = plan_of_line ~config_fingerprint:t.fingerprint ~shards line in
    let timeout_ms =
      match plan.pl_timeout_ms with
      | Some _ as s -> s
      | None -> t.default_timeout_ms
    in
    let deadline_ms = Option.map (fun ms -> now +. ms) timeout_ms in
    match plan.pl_route with
    | To i -> (
      let w = t.workers.(i) in
      w.routed <- w.routed + 1;
      match Admission.check w.adm ~now_ms:now ~deadline_ms with
      | Admission.Shed { retry_after_ms } ->
        emit_overloaded t ~id:plan.pl_id ~retry_after_ms
      | Admission.Admit ->
        Admission.enqueue w.adm;
        push t w { line; pend = P_plain; admitted = true; enq_ms = now })
    | Fanout { fwd; bwd } -> (
      let wf = t.workers.(fwd) and wb = t.workers.(bwd) in
      wf.routed <- wf.routed + 1;
      if bwd <> fwd then wb.routed <- wb.routed + 1;
      let id = Option.value plan.pl_id ~default:"" in
      match plan.pl_fanout with
      | None ->
        (* cannot happen: a parsed equiv carries raw phi/psi strings;
           degrade to routing the whole line to the forward shard *)
        push t wf { line; pend = P_plain; admitted = false; enq_ms = now }
      | Some (phi, psi) -> (
        (* both directions must be admitted before either enqueues, so
           a half-shed equiv never occupies a slot. When they share a
           shard the pair is checked as one two-slot unit — two
           independent checks would each see the same depth and could
           both admit at depth = bound - 1, pushing the queue past its
           bound and under-counting the second direction's queue wait.
           Across distinct shards both checks always run, and a shed
           reports the larger of the two hints (protocol.md). *)
        let verdict =
          if fwd = bwd then
            Admission.check ~slots:2 wf.adm ~now_ms:now ~deadline_ms
          else
            match
              ( Admission.check wf.adm ~now_ms:now ~deadline_ms,
                Admission.check wb.adm ~now_ms:now ~deadline_ms )
            with
            | Admission.Admit, Admission.Admit -> Admission.Admit
            | ( Admission.Shed { retry_after_ms = a },
                Admission.Shed { retry_after_ms = b } ) ->
              Admission.Shed { retry_after_ms = Float.max a b }
            | (Admission.Shed _ as s), _ | _, (Admission.Shed _ as s) -> s
        in
        match verdict with
        | Admission.Shed { retry_after_ms } ->
          emit_overloaded t ~id:plan.pl_id ~retry_after_ms
        | Admission.Admit ->
          Admission.enqueue wf.adm;
          Admission.enqueue wb.adm;
          let cell =
            { eq_id = id;
              eq_start = now;
              fwd_resp = None;
              bwd_resp = None;
              eq_settled = false
            }
          in
          push t wf
            { line = contains_line ~id ~phi ~psi ~timeout_ms;
              pend = P_dir (cell, Fwd);
              admitted = true;
              enq_ms = now
            };
          push t wb
            { line = contains_line ~id ~phi:psi ~psi:phi ~timeout_ms;
              pend = P_dir (cell, Bwd);
              admitted = true;
              enq_ms = now
            }))
  end

(* --- metrics --- *)

let router_json t =
  let arr f =
    Json.Arr (Array.to_list (Array.map f t.workers))
  in
  Json.Obj
    [ ("shards", Json.Num (float_of_int (Array.length t.workers)));
      ("worker_restarts", Json.Num (float_of_int t.restarts));
      ("routed", arr (fun w -> Json.Num (float_of_int w.routed)));
      ("admission", arr (fun w -> Admission.to_json w.adm));
      ( "shed",
        Json.Num
          (float_of_int
             (Array.fold_left
                (fun acc w -> acc + Admission.shed_count w.adm)
                0 t.workers)) );
      (* how the cross-worker merge above combined latency shapes *)
      ( "latency_merge",
        Json.Str "request-weighted means; percentiles are approximations" )
    ]

let metrics_json t =
  let slots =
    Array.map
      (fun w ->
        let slot = ref None in
        if w.w_alive then
          push t w
            { line = sentinel;
              pend = P_probe slot;
              admitted = false;
              enq_ms = Trace.now_ms ()
            }
        else slot := Some (Json.Obj []);
        slot)
      t.workers
  in
  while Array.exists (fun s -> !s = None) slots do
    ignore (pump_io t ~timeout:0.25)
  done;
  let snaps = List.filter_map (fun s -> !s) (Array.to_list slots) in
  match merge_metrics snaps with
  | Json.Obj fields -> Some (Json.Obj (fields @ [ ("router", router_json t) ]))
  | j -> Some j

(* --- lifecycle --- *)

(* How long [close] keeps draining before killing a worker that has
   not exited. Callers drain before closing, so a worker is normally
   idle and exits the moment it reads EOF; the grace only matters for
   a worker wedged in a deadline-less solve. *)
let close_grace_s = 10.

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* closing the request pipe is the shutdown signal: the worker
       loop reads EOF and exits. Requests never sent will never be
       answered — fail them before the EOF so their clients still get
       one reply per line. *)
    Array.iter
      (fun w ->
        if w.w_alive then begin
          Queue.iter
            (fail_entry ~msg:"router closed before request was sent" t w)
            w.unsent;
          Queue.clear w.unsent;
          w.woff <- 0;
          try Unix.close w.wfd with Unix.Unix_error _ -> ()
        end)
      t.workers;
    (* A worker mid-write into a full response pipe never reaches that
       EOF, so keep draining responses (still emitting them) until each
       response pipe reports EOF — jumping straight to [waitpid] here
       would deadlock against such a worker. EOF lands in [worker_died]:
       remaining in-flight entries answer structured errors, the child
       is reaped, and [t.closed] suppresses the respawn. *)
    let give_up = Trace.now_ms () +. (close_grace_s *. 1000.) in
    while
      Array.exists (fun w -> w.w_alive) t.workers
      && Trace.now_ms () < give_up
    do
      ignore (pump_io t ~timeout:0.25)
    done;
    Array.iter
      (fun w ->
        if w.w_alive then begin
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          worker_died t w
        end)
      t.workers
  end

let engine ?(queue_depth = 64) ?default_timeout_ms ?(trace = false)
    ?chaos_crash_id ?make_service ~shards ~emit config =
  let shards = max 1 shards in
  let make_service =
    match make_service with
    | Some f -> f
    | None -> fun ~shard:_ -> Service.create config
  in
  (* a worker death shows up as EOF on its response pipe; a write to a
     dying worker must report EPIPE, not kill the router *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t =
    { fingerprint = Service.Config.fingerprint config.Service.Config.solver;
      default_timeout_ms;
      trace;
      chaos_crash_id;
      make_service;
      emit;
      workers =
        Array.init shards (fun i ->
            { w_index = i;
              pid = -1;
              wfd = Unix.stdin;
              rfd = Unix.stdin;
              w_alive = false;
              unsent = Queue.create ();
              woff = 0;
              sent = Queue.create ();
              rbuf = Buffer.create 4096;
              adm = Admission.create ~max_depth:queue_depth ();
              last_done = 0.;
              routed = 0
            });
      rdbuf = Bytes.create 65536;
      restarts = 0;
      closed = false
    }
  in
  for i = 0 to shards - 1 do
    spawn t i
  done;
  Engine.make
    ~submit:(fun line -> submit t line)
    ~pump:(fun () -> ignore (pump_io t ~timeout:0.))
    ~drain:(fun () -> drain t)
    ~pending:(fun () -> pending t)
    ~wait:(fun fds timeout -> pump_io t ~extra_rds:fds ~timeout)
    ~metrics_json:(fun () -> metrics_json t)
    ~close:(fun () -> close t)
    ()
