(** Multi-process sharded serving behind the {!Xpds_service.Engine}
    seam.

    The router forks [shards] worker processes, each running its own
    {!Xpds_service.Service.t} and speaking the unmodified NDJSON v1
    protocol over a pair of pipes. Every request line is routed by its
    deterministic canonical cache key — the same kind-tagged,
    doctype-salted {!Xpds_service.Cache_key} the service caches under —
    so a given formula always lands on the same worker and the
    per-shard LRU/disk tiers never alias across kinds or doctypes.
    [equiv] requests are fanned out: each direction travels to {e its}
    home shard as a [contains] request (sharing that shard's contains
    cache with direct queries), and the router merges the two direction
    responses into the v1 equiv schema.

    Admission is bounded and deadline-aware ({!Xpds_service.Admission}):
    a request that cannot meet its deadline given the target shard's
    queue depth and EWMA service time is shed immediately with
    [{"v":1,"id":..,"error":"overloaded","retry_after_ms":..}] instead
    of queueing past its budget.

    Worker crashes are isolated: the router notices the closed pipe,
    answers everything in flight on that shard with structured error
    lines, respawns the worker (same shard index, so a per-shard disk
    store is reattached), and counts the restart in the aggregated
    metrics.

    The router is single-threaded ([Unix.select] over all worker
    pipes); with [~shards:1] it forwards every line, in order, to one
    worker whose answers are the in-process [handle_line] answers —
    the bit-identical-serving gate of the load bench rests on this. *)

(** {1 Routing} *)

val shard_of_key : shards:int -> Xpds_service.Cache_key.t -> int
(** Deterministic shard index from a canonical cache key (a uniform
    MD5 digest): the first three key bytes, big-endian, mod [shards]. *)

type route =
  | To of int  (** whole line to this shard *)
  | Fanout of { fwd : int; bwd : int }
      (** an [equiv]: forward/backward directions to their home shards *)

val route_line : config_fingerprint:string -> shards:int -> string -> route
(** Where a raw request line goes. [sat], [contains] and
    [sat_under_doctype] requests route by their canonical cache key;
    [eval] requests by the digest of (source identity, canonical
    query); lines that do not parse route by a digest of the raw text
    (any worker answers the same structured error). Total — never
    raises. *)

(** {1 The engine} *)

val engine :
  ?queue_depth:int ->
  ?default_timeout_ms:float ->
  ?trace:bool ->
  ?chaos_crash_id:string ->
  ?make_service:(shard:int -> Xpds_service.Service.t) ->
  shards:int ->
  emit:(string -> unit) ->
  Xpds_service.Service.Config.t ->
  Xpds_service.Engine.t
(** Fork [shards] workers (each building its service via
    [make_service], default [Service.create config] — the hook is where
    [bin/main] opens per-shard disk stores and registers [--doc]
    documents, {e in the child, after the fork}) and return the router
    as an engine. [queue_depth] bounds each shard's admission queue
    (default 64). [default_timeout_ms] and [trace] are applied by the
    workers' [handle_line] and by the router's admission estimate.
    [chaos_crash_id] arms the workers' {!Xpds_service.Service.Chaos}
    hook to kill the worker process mid-solve on that request id — the
    crash-isolation tests and the load bench's crash leg use it.

    The returned engine's {!Xpds_service.Engine.wait} folds the
    caller's descriptors into the router's own select over the worker
    pipes — a serving loop must use it (not a blocking read of its
    input source) so responses are emitted the moment workers produce
    them, even while no new input arrives.

    Closing the engine closes the request pipes (workers exit on EOF),
    fails never-sent requests with structured errors, keeps draining —
    and emitting — responses until every response pipe reports EOF (so
    a worker blocked writing into a full pipe can finish and exit),
    then reaps the children; a worker that still has not exited after a
    10 s grace (wedged in a deadline-less solve) is killed. *)

(** {1 Metrics aggregation} *)

val merge_metrics : Json.t list -> Json.t
(** Merge per-worker {!Xpds_service.Metrics.to_json} snapshots into one
    aggregate: numeric fields are summed, except [*min*]/[*max*] fields
    (min/max) and latency-shape fields ([mean], [p50], [p95], [p99],
    [est_ms]) — those average over the snapshots that carry them,
    weighted by each snapshot's top-level [requests] count so a shard
    that served 10,000 requests dominates one that served 10 (plain
    average when every weight is zero). A weighted average of per-shard
    percentiles is still an approximation of the fleet percentile, and
    the router section labels it as one ([latency_merge]). Strings and
    booleans take the first snapshot's value; objects merge recursively
    (union of keys, first-appearance order). Exposed for the unit
    tests. *)
