(* xpds — command-line front end.

   Subcommands:
     sat        decide satisfiability of a formula
     classify   fragment and resource bounds of a formula (Fig. 4)
     check      evaluate a formula on a given data tree
     translate  show the Theorem-3 BIP automaton of a formula
     contain    decide containment of two node expressions
     tiling     solve + encode the built-in tiling examples
     qbf        decide a QBF and its Prop-8 XPath encoding
     xml        encode an XML file as a data tree (Appendix A)
     eval       evaluate queries over an XML/data-tree document
     serve      NDJSON request/response solver loop on stdin/stdout
     batch      solve a file of formulas, optionally in parallel
     certify    re-check a stored certificate with the naive verifier
     cache      export/import/inspect persistent verdict stores
     bench      run a repository benchmark, write JSON results

   sat/serve/batch also take --certify: solve in certificate mode,
   emit a checkable certificate per verdict and verify it on the spot
   with the independent checker (lib/cert). serve/batch also take
   --store FILE: a persistent verdict store (lib/store) acting as a
   certificate-verified disk tier under the in-memory LRU, so a fresh
   process warm-starts from earlier runs. *)

open Cmdliner

let formula_arg =
  let doc = "The formula, in the concrete syntax (see the README)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA" ~doc)

let parse_node s =
  match Xpds.Parser.formula_of_string s with
  | Ok f -> Ok (Xpds.Ast.as_node f)
  | Error e -> Error e

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline e;
    exit 2

let width_arg =
  let doc = "Branching width bound of the emptiness search." in
  Arg.(value & opt int 3 & info [ "width" ] ~doc)

let verbose_arg =
  let doc = "Print the full report rather than just the verdict." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let domains_arg =
  let doc =
    "Worker domains for the emptiness saturation (the parallel engine \
     of Theorem 4's fixpoint). 0 means the default: \\$(b,XPDS_DOMAINS) \
     when set, else 1 (sequential). Verdicts, statistics and \
     certificates are bit-identical across domain counts."
  in
  Arg.(value & opt int 0 & info [ "domains" ] ~doc)

(* 0 = "not set on the command line": fall back to Sat.Options.default,
   which reads XPDS_DOMAINS. *)
let resolve_domains d =
  if d > 0 then d else Xpds.Sat.Options.default.Xpds.Sat.Options.domains

let no_prune_arg =
  let doc =
    "Disable subsumption pruning in the emptiness fixpoint and run the \
     exact engine (every reachable extended state kept). Pruning is on \
     by default and never changes the verdict of a search that \
     finishes within budget; certificate runs are always exact \
     regardless of this flag."
  in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

(* --- sat --- *)

let json_arg =
  let doc = "Emit JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let certify_arg =
  let doc =
    "Solve in certificate mode and check the emitted certificate with \
     the independent verifier before reporting."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

(* Build and check the certificate of a report solved with
   ~certificate:true. Returns the JSON summary fields, the certificate
   itself (for --cert-out / --cert-dir), and whether the pipeline is
   healthy: an UNKNOWN verdict has no certificate and that is fine; an
   emission error or a rejected check is a failure. Check outcomes are
   recorded in [svc]'s metrics when a service is in play. *)
let certify_report ?svc ?trace (report : Xpds.Sat.report) =
  match report.Xpds.Sat.verdict with
  | Xpds.Sat.Unknown _ ->
    ([ ("certificate", Xpds.Json.Str "unavailable") ], None, true)
  | _ -> (
    match Xpds.Cert.of_report report with
    | Error e ->
      ( [ ("certificate", Xpds.Json.Str "emission failed");
          ("certificate_error", Xpds.Json.Str e)
        ],
        None,
        false )
    | Ok cert ->
      let t0 = Xpds.Trace.now_ms () in
      let result = Xpds.Cert.check cert in
      let ms = Xpds.Trace.now_ms () -. t0 in
      Option.iter
        (fun svc ->
          Xpds.Service.record_cert svc ~ok:(Result.is_ok result) ~ms)
        svc;
      Option.iter (fun tr -> Xpds.Trace.add_ms tr "certificate" ms) trace;
      let ms_field =
        ("certificate_ms", Xpds.Json.Num (Float.round (ms *. 1000.) /. 1000.))
      in
      let fields, ok =
        match result with
        | Ok v ->
          ( [ ( "certificate",
                Xpds.Json.Str (Format.asprintf "%a" Xpds.Cert.pp_verdict v) );
              ms_field
            ],
            true )
        | Error e ->
          ( [ ("certificate", Xpds.Json.Str "rejected");
              ("certificate_error", Xpds.Json.Str e);
              ms_field
            ],
            false )
      in
      (fields, Some cert, ok))

let pp_cert_fields fields =
  List.iter
    (fun (k, v) ->
      Format.printf "%s: %s@." k
        (match v with
        | Xpds.Json.Str s -> s
        | other -> Xpds.Json.to_string other))
    fields

let sat_cmd =
  let minimize_arg =
    Arg.(value & flag & info [ "minimize" ] ~doc:"Shrink the witness.")
  in
  let cert_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert-out" ] ~docv:"FILE"
          ~doc:
            "Write the certificate (JSON) to $(docv); implies \
             --certify.")
  in
  let run formula width verbose json minimize certify cert_out domains
      no_prune =
    let certify = certify || cert_out <> None in
    let eta = or_die (parse_node formula) in
    let options =
      Xpds.Sat.Options.(
        default |> with_width width |> with_minimize minimize
        |> with_certificate certify
        |> with_domains (resolve_domains domains)
        |> with_prune (not no_prune))
    in
    let report = Xpds.Sat.decide ~options eta in
    let cert_fields, cert, cert_ok =
      if certify then certify_report report else ([], None, true)
    in
    (match (cert_out, cert) with
    | Some file, Some cert -> Xpds.Cert.to_file file cert
    | Some file, None ->
      Printf.eprintf "%s not written: no certificate emitted\n%!" file
    | None, _ -> ());
    if json then
      (* report_to_json ends in "}": splice the certificate summary in
         rather than printing a second document. *)
      let base = Xpds.Serialize.report_to_json report in
      if cert_fields = [] then print_endline base
      else begin
        let spliced =
          String.sub base 0 (String.length base - 1)
          ^ ","
          ^
          let obj = Xpds.Json.to_string (Xpds.Json.Obj cert_fields) in
          String.sub obj 1 (String.length obj - 1)
        in
        print_endline spliced
      end
    else begin
      if verbose then Format.printf "%a@." Xpds.Sat.pp_report report
      else Format.printf "%a@." Xpds.Sat.pp_verdict report.Xpds.Sat.verdict;
      pp_cert_fields cert_fields
    end;
    if not cert_ok then exit 4;
    match report.Xpds.Sat.verdict with
    | Xpds.Sat.Sat _ -> exit 0
    | Xpds.Sat.Unsat | Xpds.Sat.Unsat_bounded _ -> exit 1
    | Xpds.Sat.Unknown _ -> exit 3
  in
  Cmd.v
    (Cmd.info "sat"
       ~doc:
         "Decide satisfiability (Definition 1). Exit: 0 sat, 1 unsat, \
          3 unknown, 4 certificate failure (with --certify).")
    Term.(
      const run $ formula_arg $ width_arg $ verbose_arg $ json_arg
      $ minimize_arg $ certify_arg $ cert_out_arg $ domains_arg
      $ no_prune_arg)

(* --- classify --- *)

let classify_cmd =
  let run formula =
    let eta = or_die (parse_node formula) in
    let fragment = Xpds.Fragment.classify eta in
    Format.printf "fragment:   %s@." (Xpds.Fragment.name fragment);
    Format.printf "complexity: %s@."
      (match Xpds.Fragment.complexity fragment with
      | Xpds.Fragment.PSpace -> "PSpace-complete"
      | Xpds.Fragment.ExpTime -> "ExpTime-complete");
    Format.printf "size:       %d@." (Xpds.Measure.size_node eta);
    Format.printf "data tests: %d@." (Xpds.Measure.data_tests eta);
    (match Xpds.Fragment.poly_depth_bound eta with
    | Some b -> Format.printf "poly-depth model bound: %d@." b
    | None -> Format.printf "poly-depth model bound: none (ExpTime row)@.")
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Locate a formula in the paper's Figure 4 and show bounds.")
    Term.(const run $ formula_arg)

(* --- check --- *)

let check_cmd =
  let tree_arg =
    let doc = "The data tree, e.g. 'a:1(b:2,b:3)'." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TREE" ~doc)
  in
  let run formula tree =
    let eta = or_die (parse_node formula) in
    let t = or_die (Xpds.Data_tree.of_string tree) in
    let env = Xpds.Semantics.env_of_tree t in
    let sat = Xpds.Semantics.sat_nodes env eta in
    Format.printf "holds at root: %b@."
      (Xpds.Semantics.holds_at_root env eta);
    Format.printf "[[formula]] = {%a}@."
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Xpds.Path.pp)
      sat;
    exit (if sat = [] then 1 else 0)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Evaluate a formula on a concrete data tree.")
    Term.(const run $ formula_arg $ tree_arg)

(* --- explain --- *)

let explain_cmd =
  let tree_arg =
    let doc = "The data tree, e.g. 'a:1(b:2,b:3)'." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TREE" ~doc)
  in
  let run formula tree =
    let eta = or_die (parse_node formula) in
    let t = or_die (Xpds.Data_tree.of_string tree) in
    Format.printf "%a@." (fun ppf () -> Xpds.Explain.pp ppf t eta) ()
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show where every subformula holds on a data tree.")
    Term.(const run $ formula_arg $ tree_arg)

(* --- translate --- *)

let translate_cmd =
  let dot_arg =
    let doc = "Emit Graphviz dot instead of text." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let run formula dot =
    let eta = or_die (parse_node formula) in
    let m = Xpds.Translate.bip_of_node eta in
    if dot then print_string (Xpds.Dot.bip m)
    else begin
      Format.printf "%a@." Xpds.Bip.pp m;
      Format.printf "bounded interleaving: %b@."
        (Xpds.Bip.has_bounded_interleaving m)
    end
  in
  Cmd.v
    (Cmd.info "translate"
       ~doc:"Show the BIP automaton of a formula (Theorem 3).")
    Term.(const run $ formula_arg $ dot_arg)

(* --- contains / equiv --- *)

let psi_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"PSI" ~doc:"The containing formula.")

let local_timeout_arg =
  let doc = "Deadline in milliseconds for the \xcf\x86\xe2\x88\xa7\xc2\xac\xcf\x88 search(es)." in
  Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~doc)

(* The full PR-5 options surface, so the containment path honors the
   same deadlines/engine knobs as [sat]. *)
let containment_options ~width ~domains ~no_prune ~timeout_ms =
  let deadline = Option.map (fun ms -> Xpds.Trace.now_ms () +. ms) timeout_ms in
  Xpds.Sat.Options.(
    default |> with_width width
    |> with_domains (resolve_domains domains)
    |> with_prune (not no_prune)
    |> with_should_stop
         (Option.map (fun d () -> Xpds.Trace.now_ms () > d) deadline))

let answer_fields = function
  | Xpds.Containment.Holds -> (0, "holds", [])
  | Xpds.Containment.Holds_bounded why ->
    (0, "holds_bounded", [ ("reason", Xpds.Json.Str why) ])
  | Xpds.Containment.Fails w ->
    ( 1,
      "fails",
      [ ("counterexample", Xpds.Json.Str (Xpds.Data_tree.to_compact_string w))
      ] )
  | Xpds.Containment.Unknown why ->
    (3, "unknown", [ ("reason", Xpds.Json.Str why) ])

let pp_answer direction = function
  | Xpds.Containment.Holds ->
    Printf.printf "%s holds (certified)\n" direction
  | Xpds.Containment.Holds_bounded why ->
    Printf.printf "%s holds (%s)\n" direction why
  | Xpds.Containment.Fails w ->
    Printf.printf "%s fails; counterexample: %s\n" direction
      (Xpds.Data_tree.to_compact_string w)
  | Xpds.Containment.Unknown why ->
    Printf.printf "%s unknown (%s)\n" direction why

let contains_cmd =
  let run phi_s psi_s width json domains no_prune timeout_ms =
    let phi = or_die (parse_node phi_s) in
    let psi = or_die (parse_node psi_s) in
    let options = containment_options ~width ~domains ~no_prune ~timeout_ms in
    let answer = Xpds.Containment.contained ~options phi psi in
    let code, name, fields = answer_fields answer in
    if json then
      print_endline
        (Xpds.Json.to_string
           (Xpds.Json.Obj (("answer", Xpds.Json.Str name) :: fields)))
    else pp_answer "containment" answer;
    exit code
  in
  Cmd.v
    (Cmd.info "contains"
       ~doc:
         "Decide [[PHI]] <= [[PSI]] on all data trees (Section 4.1); a \
          failing containment prints its counterexample tree in the \
          parseable label:datum syntax (feed it back to $(b,xpds check)).")
    Term.(
      const run $ formula_arg $ psi_arg $ width_arg $ json_arg $ domains_arg
      $ no_prune_arg $ local_timeout_arg)

let equiv_cmd =
  let run phi_s psi_s width json domains no_prune timeout_ms =
    let phi = or_die (parse_node phi_s) in
    let psi = or_die (parse_node psi_s) in
    let options = containment_options ~width ~domains ~no_prune ~timeout_ms in
    let fwd, bwd = Xpds.Containment.equivalent ~options phi psi in
    let code_of a b =
      match (a, b) with
      | ( (Xpds.Containment.Holds | Xpds.Containment.Holds_bounded _),
          (Xpds.Containment.Holds | Xpds.Containment.Holds_bounded _) ) -> 0
      | Xpds.Containment.Fails _, _ | _, Xpds.Containment.Fails _ -> 1
      | _ -> 3
    in
    let code = code_of fwd bwd in
    if json then begin
      let dir a =
        let _, name, fields = answer_fields a in
        Xpds.Json.Obj (("answer", Xpds.Json.Str name) :: fields)
      in
      let eq_field =
        if code = 0 then [ ("equivalent", Xpds.Json.Bool true) ]
        else if code = 1 then [ ("equivalent", Xpds.Json.Bool false) ]
        else []
      in
      print_endline
        (Xpds.Json.to_string
           (Xpds.Json.Obj
              (eq_field @ [ ("forward", dir fwd); ("backward", dir bwd) ])))
    end
    else begin
      pp_answer "phi <= psi" fwd;
      pp_answer "psi <= phi" bwd;
      if code = 0 then print_endline "equivalent"
      else if code = 1 then print_endline "not equivalent"
      else print_endline "equivalence unknown"
    end;
    exit code
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:
         "Decide [[PHI]] = [[PSI]] on all data trees (mutual inclusion, \
          Section 4.1).")
    Term.(
      const run $ formula_arg $ psi_arg $ width_arg $ json_arg $ domains_arg
      $ no_prune_arg $ local_timeout_arg)

(* --- tiling --- *)

let tiling_cmd =
  let run () =
    List.iter
      (fun (name, inst) ->
        let wins = Xpds.Tiling_game.eloise_wins inst in
        let phi = Xpds.Tiling.encode inst in
        Format.printf "%s: Eloise wins = %b; encoding size = %d (%s)@."
          name wins
          (Xpds.Measure.size_node phi)
          (Xpds.Fragment.name (Xpds.Fragment.classify phi)))
      [ ("example_win", Xpds.Tiling_game.example_win ());
        ("example_lose", Xpds.Tiling_game.example_lose ())
      ]
  in
  Cmd.v
    (Cmd.info "tiling"
       ~doc:"Solve the built-in corridor-tiling examples and show their \
             Theorem-5 encodings.")
    Term.(const run $ const ())

(* --- qbf --- *)

let qbf_cmd =
  let qbf_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QBF"
          ~doc:"Instance as 'EA: 1 2 0 -1 -2 0' (prefix, then DIMACS \
                clauses).")
  in
  let run s width =
    let q = or_die (Xpds.Qbf.of_string s) in
    let truth = Xpds.Qbf.valid q in
    Format.printf "QBF %a@.valid: %b@." Xpds.Qbf.pp q truth;
    let phi = Xpds.Qbf_encoding.encode q in
    Format.printf "encoding: size %d in %s@."
      (Xpds.Measure.size_node phi)
      (Xpds.Fragment.name (Xpds.Fragment.classify phi));
    let report =
      Xpds.Sat.decide
        ~options:Xpds.Sat.Options.(default |> with_width width)
        phi
    in
    Format.printf "encoding satisfiable: %a@." Xpds.Sat.pp_verdict
      report.Xpds.Sat.verdict
  in
  Cmd.v
    (Cmd.info "qbf"
       ~doc:"Decide a QBF directly and through its Prop-8 XPath \
             encoding.")
    Term.(const run $ qbf_arg $ width_arg)

(* --- gen --- *)

let gen_cmd =
  let count_arg =
    Arg.(value & opt int 5 & info [ "n" ] ~doc:"How many formulas.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Random seed.")
  in
  let fragment_arg =
    let doc =
      "Fragment: child, desc, child-desc, child-data, desc-data, \
       desc-data-epsfree, full, reg."
    in
    Arg.(value & opt string "full" & info [ "fragment" ] ~doc)
  in
  let run count seed fragment =
    let config =
      match fragment with
      | "child" -> Xpds.Generator.fragment_config Xpds.Fragment.XPath_child
      | "desc" -> Xpds.Generator.fragment_config Xpds.Fragment.XPath_desc
      | "child-desc" ->
        Xpds.Generator.fragment_config Xpds.Fragment.XPath_child_desc
      | "child-data" ->
        Xpds.Generator.fragment_config Xpds.Fragment.XPath_child_data
      | "desc-data" ->
        Xpds.Generator.fragment_config Xpds.Fragment.XPath_desc_data
      | "desc-data-epsfree" ->
        Xpds.Generator.fragment_config Xpds.Fragment.XPath_desc_data_epsfree
      | "reg" | "full" ->
        Xpds.Generator.fragment_config Xpds.Fragment.RegXPath_data
      | other ->
        prerr_endline ("unknown fragment " ^ other);
        exit 2
    in
    let st = Random.State.make [| seed |] in
    for _ = 1 to count do
      print_endline
        (Xpds.Pp.node_to_string (Xpds.Generator.node ~config st))
    done
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate random formulas of a chosen Fig. 4 fragment.")
    Term.(const run $ count_arg $ seed_arg $ fragment_arg)

(* --- repl --- *)

let repl_cmd =
  let run () =
    let tree = ref (Xpds.Data_tree.example_fig1 ()) in
    print_endline
      "xpds repl — commands: tree <t>, show, check <formula>, sat \
       <formula>, classify <formula>, explain <formula>, quit";
    let rec loop () =
      print_string "> ";
      match read_line () with
      | exception End_of_file -> ()
      | line ->
        let line = String.trim line in
        let cmd, arg =
          match String.index_opt line ' ' with
          | Some i ->
            ( String.sub line 0 i,
              String.trim (String.sub line i (String.length line - i)) )
          | None -> (line, "")
        in
        (match cmd with
        | "" -> ()
        | "quit" | "exit" -> raise Exit
        | "tree" -> (
          match Xpds.Data_tree.of_string arg with
          | Ok t ->
            tree := t;
            Format.printf "tree set: %a@." Xpds.Data_tree.pp t
          | Error e -> print_endline e)
        | "show" -> Format.printf "%a@." Xpds.Data_tree.pp !tree
        | "check" -> (
          match parse_node arg with
          | Ok phi ->
            let env = Xpds.Semantics.env_of_tree !tree in
            Format.printf "[[formula]] = {%a}@."
              (Format.pp_print_list
                 ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
                 Xpds.Path.pp)
              (Xpds.Semantics.sat_nodes env phi)
          | Error e -> print_endline e)
        | "sat" -> (
          match parse_node arg with
          | Ok phi ->
            Format.printf "%a@." Xpds.Sat.pp_report (Xpds.Sat.decide phi)
          | Error e -> print_endline e)
        | "classify" -> (
          match parse_node arg with
          | Ok phi ->
            Format.printf "%s@."
              (Xpds.Fragment.name (Xpds.Fragment.classify phi))
          | Error e -> print_endline e)
        | "explain" -> (
          match parse_node arg with
          | Ok phi ->
            Format.printf "%a@."
              (fun ppf () -> Xpds.Explain.pp ppf !tree phi)
              ()
          | Error e -> print_endline e)
        | other -> print_endline ("unknown command: " ^ other));
        loop ()
    in
    (try loop () with Exit -> ());
    print_endline "bye"
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive session against a data tree.")
    Term.(const run $ const ())

(* --- xml --- *)

let xml_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML file.")
  in
  let run file json dot =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    let doc = or_die (Xpds.Xml_doc.parse src) in
    let tree = Xpds.Xml_doc.to_data_tree doc in
    if json then print_endline (Xpds.Serialize.tree_to_json tree)
    else if dot then print_string (Xpds.Dot.data_tree tree)
    else Format.printf "%a@." Xpds.Data_tree.pp tree
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot.")
  in
  Cmd.v
    (Cmd.info "xml"
       ~doc:"Encode an XML document as a data tree (Appendix A).")
    Term.(const run $ file_arg $ json_arg $ dot_arg)

(* --- eval (bulk evaluation over an array-encoded document) --- *)

let read_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

(* A document file is XML when named *.xml or when it leads with '<';
   otherwise it is the data-tree syntax of [Data_tree.of_string]. *)
let load_doc file =
  let src = read_file file in
  let trimmed = String.trim src in
  let looks_xml =
    Filename.check_suffix file ".xml"
    || (String.length trimmed > 0 && trimmed.[0] = '<')
  in
  if looks_xml then
    match Xpds.Xml_doc.parse src with
    | Ok xml -> Xpds.Eval_doc.of_xml xml
    | Error e ->
      prerr_endline (file ^ ": " ^ e);
      exit 2
  else
    match Xpds.Data_tree.of_string trimmed with
    | Ok tree -> Xpds.Eval_doc.of_tree tree
    | Error e ->
      prerr_endline (file ^ ": " ^ e);
      exit 2

let eval_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "The document: XML (by .xml suffix or a leading '<') or \
             the compact data-tree syntax label:datum(child,...).")
  in
  let queries_arg =
    Arg.(
      non_empty
      & pos_right 0 string []
      & info [] ~docv:"QUERY"
          ~doc:"One or more node expressions (concrete syntax).")
  in
  let limit_arg =
    let doc = "Positions printed per query (the count is always exact)." in
    Arg.(value & opt int 10 & info [ "limit" ] ~doc)
  in
  let run file queries json limit =
    let doc = load_doc file in
    let ev = Xpds.Eval.create doc in
    (* One shared evaluator across the whole query list: common
       subformulas are computed once (the memo the service also uses). *)
    let results =
      List.map
        (fun qs ->
          let set = Xpds.Eval.nodes ev (or_die (parse_node qs)) in
          let count = Xpds.Bitv.cardinal set in
          let shown = ref [] in
          let taken = ref 0 in
          (try
             Xpds.Bitv.iter
               (fun x ->
                 if !taken >= limit then raise Exit;
                 shown := Xpds.Eval_doc.position doc x :: !shown;
                 incr taken)
               set
           with Exit -> ());
          (qs, count, Xpds.Bitv.mem 0 set, List.rev !shown))
        queries
    in
    if json then
      print_endline
        (Xpds.Json.to_string
           (Xpds.Json.Obj
              [ ("file", Xpds.Json.Str file);
                ( "doc_nodes",
                  Xpds.Json.Num (float_of_int doc.Xpds.Eval_doc.n) );
                ( "node_evals",
                  Xpds.Json.Num (float_of_int (Xpds.Eval.node_evals ev)) );
                ( "results",
                  Xpds.Json.Arr
                    (List.map
                       (fun (q, count, root, shown) ->
                         Xpds.Json.Obj
                           [ ("query", Xpds.Json.Str q);
                             ( "count",
                               Xpds.Json.Num (float_of_int count) );
                             ("root", Xpds.Json.Bool root);
                             ( "nodes",
                               Xpds.Json.Arr
                                 (List.map
                                    (fun p ->
                                      Xpds.Json.Str (Xpds.Path.to_string p))
                                    shown) )
                           ])
                       results) )
              ]))
    else begin
      Format.printf "%s: %d nodes@." file doc.Xpds.Eval_doc.n;
      List.iter
        (fun (q, count, root, shown) ->
          Format.printf "%s: %d node%s%s@." q count
            (if count = 1 then "" else "s")
            (if root then " (holds at the root)" else "");
          List.iter
            (fun p -> Format.printf "  %s@." (Xpds.Path.to_string p))
            shown;
          if count > List.length shown then
            Format.printf "  ... (+%d more)@." (count - List.length shown))
        results
    end
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:
         "Evaluate node expressions over an XML or data-tree document \
          with the bulk array evaluator: for each QUERY, the number of \
          satisfying nodes, whether the root satisfies it, and the \
          first --limit positions. Queries share one evaluator, so \
          common subformulas are computed once.")
    Term.(const run $ file_arg $ queries_arg $ json_arg $ limit_arg)

(* --- serve / batch (the solver service) --- *)

let timeout_arg =
  let doc =
    "Default per-request deadline in milliseconds (a timed-out request \
     answers verdict \"unknown\", never a wrong certified verdict); 0 \
     means no deadline. Individual serve requests may override it with \
     their own \"timeout_ms\" field."
  in
  Arg.(value & opt float 0. & info [ "timeout-ms" ] ~doc)

let cache_arg =
  let doc = "Capacity of the LRU result cache (entries)." in
  Arg.(value & opt int 4096 & info [ "cache" ] ~doc)

let stats_arg =
  let doc = "Print service metrics (JSON, on stderr) when done." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let store_arg =
  let doc =
    "Persistent verdict store (created if absent): a second cache tier \
     on disk. Memory misses probe it (verified on load) before \
     solving, and every cacheable verdict is appended to it, so a \
     fresh process warm-starts from previous sessions. The file is \
     keyed on the protocol version and solver configuration; opening \
     it under a different configuration restarts it empty."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"FILE" ~doc)

let store_verify_arg =
  let doc =
    "How hard to verify a store record before serving it: \
     $(b,fingerprint) (default) recomputes the record's certificate \
     fingerprint against the request's canonical formula; $(b,full) \
     additionally replays SAT witnesses through the reference \
     semantics. Records failing either check self-evict and the \
     request is solved fresh."
  in
  Arg.(
    value
    & opt (enum [ ("fingerprint", Xpds.Store.Fingerprint);
                  ("full", Xpds.Store.Full) ])
        Xpds.Store.Fingerprint
    & info [ "store-verify" ] ~docv:"MODE" ~doc)

let open_store ~verify ~solver path =
  match
    Xpds.Store.open_rw ~verify ~path
      ~protocol_version:Xpds.Service.protocol_version
      ~config_fingerprint:(Xpds.Service.Config.fingerprint solver) ()
  with
  | Error e ->
    prerr_endline (path ^ ": " ^ e);
    exit 2
  | Ok (store, info) ->
    if info.Xpds.Store.invalidated then
      Printf.eprintf
        "%s: existing store was written under a different \
         protocol/configuration (or is damaged); restarted empty\n%!"
        path
    else if info.Xpds.Store.recovered_bytes > 0 then
      Printf.eprintf "%s: dropped %d damaged trailing bytes\n%!" path
        info.Xpds.Store.recovered_bytes;
    store

let config_of ?(certificate = false) ?(retry_degraded = false)
    ?(domains = 0) ?(prune = true) ~cache_capacity ~jobs () =
  Xpds.Service.Config.(
    default |> with_certificate certificate
    |> with_retry_degraded retry_degraded
    |> with_domains (resolve_domains domains)
    |> with_prune prune
    |> with_cache_capacity cache_capacity
    |> with_jobs (if jobs > 0 then jobs else Xpds.Pool.default_jobs ()))

let service_of ?certificate ?retry_degraded ?domains ?prune ?store_path
    ?(store_verify = Xpds.Store.Fingerprint) ~cache_capacity ~jobs () =
  let config =
    config_of ?certificate ?retry_degraded ?domains ?prune ~cache_capacity
      ~jobs ()
  in
  let store =
    Option.map
      (open_store ~verify:store_verify
         ~solver:config.Xpds.Service.Config.solver)
      store_path
  in
  (Xpds.Service.create ?store config, store)

let print_store_info store =
  let num i = Xpds.Json.Num (float_of_int i) in
  let c = Xpds.Store.counters store in
  prerr_endline
    (Xpds.Json.to_string
       (Xpds.Json.Obj
          [ ("store", Xpds.Json.Str (Xpds.Store.path store));
            ("records", num (Xpds.Store.length store));
            ("bytes", num (Xpds.Store.bytes_on_disk store));
            ("memory_hits", num c.Xpds.Store.memory_hits);
            ("disk_hits", num c.Xpds.Store.disk_hits);
            ("misses", num c.Xpds.Store.misses);
            ("self_evictions", num c.Xpds.Store.self_evictions);
            ("appends", num c.Xpds.Store.appends)
          ]))

let close_store ?(stats = false) store =
  Option.iter
    (fun store ->
      if stats then print_store_info store;
      Xpds.Store.close store)
    store

let default_timeout t = if t > 0. then Some t else None

let trace_arg =
  let doc =
    "Attach per-request phase timings (parse, canonicalize, cache \
     probe, queue wait, translate/fixpoint/verify, certificate) to \
     every response as a \"trace\" object."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let degrade_arg =
  let doc =
    "Graceful degradation: retry a budget-exhausted \"unknown\" once \
     under smaller search bounds (responses gain \"degraded\":true) \
     instead of giving up."
  in
  Arg.(value & flag & info [ "degrade" ] ~doc)

let print_metrics svc =
  prerr_endline
    (Xpds.Json.to_string
       (Xpds.Service_metrics.to_json (Xpds.Service.metrics svc)))

let serve_cmd =
  let docs_arg =
    let doc =
      "Register a document for eval-kind requests, as NAME=FILE (XML \
       or data-tree syntax; repeatable). Requests address it as \
       {\"kind\":\"eval\", \"doc\":\"NAME\", ...}."
    in
    Arg.(value & opt_all string [] & info [ "doc" ] ~docv:"NAME=FILE" ~doc)
  in
  let shards_arg =
    let doc =
      "Serve through N forked worker processes instead of in-process: \
       each request is routed to a worker by its deterministic \
       canonical cache key (kind-tagged and doctype-salted, so \
       per-shard caches never alias), equiv requests fan their two \
       directions out to their home shards, and worker crashes are \
       isolated and respawned. 0 (the default) serves in-process. \
       With --store FILE, shard $(i,i) persists to FILE.$(i,i)."
    in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let queue_depth_arg =
    let doc =
      "Per-shard admission queue bound (with --shards). A request \
       arriving when its target shard's queue is full — or whose \
       deadline provably cannot be met given the queue's depth and \
       observed service times — is shed immediately with a structured \
       {\"error\":\"overloaded\", \"retry_after_ms\":..} line instead \
       of queueing past its budget."
    in
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"DEPTH" ~doc)
  in
  let run timeout_ms cache stats certify trace degrade domains no_prune
      docs store_path store_verify shards queue_depth =
    let parse_doc_spec spec =
      match String.index_opt spec '=' with
      | None ->
        prerr_endline ("--doc " ^ spec ^ ": expected NAME=FILE");
        exit 2
      | Some i ->
        ( String.sub spec 0 i,
          String.sub spec (i + 1) (String.length spec - i - 1) )
    in
    let register svc (name, doc) =
      match Xpds.Service.register_doc svc ~name doc with
      | Ok () -> ()
      | Error e ->
        prerr_endline ("--doc " ^ name ^ ": " ^ e);
        exit 2
    in
    let emit line =
      print_endline line;
      flush stdout
    in
    if shards = 0 then begin
      (* the in-process engine: one service, answers inline *)
      let svc, store =
        service_of ~certificate:certify ~retry_degraded:degrade ~domains
          ~prune:(not no_prune) ?store_path ~store_verify
          ~cache_capacity:cache ~jobs:0 ()
      in
      List.iter
        (fun spec ->
          let name, file = parse_doc_spec spec in
          register svc (name, load_doc file))
        docs;
      let extra_of (resp : Xpds.Service.response) =
        if certify then
          let fields, _, _ =
            certify_report ~svc ~trace:resp.Xpds.Service.trace
              resp.Xpds.Service.report
          in
          fields
        else []
      in
      (* [handle_line] never raises: malformed JSON, unparsable
         formulas and even a crashing solve answer a structured
         {"error": ...} line — garbage on the socket must not kill the
         server. *)
      let eng =
        Xpds.Engine.in_process
          ?default_timeout_ms:(default_timeout timeout_ms) ~trace
          ~extra_of ~emit svc
      in
      let rec loop () =
        match read_line () with
        | exception End_of_file -> ()
        | line when String.trim line = "" -> loop ()
        | line ->
          Xpds.Engine.submit eng line;
          loop ()
      in
      loop ();
      if stats then print_metrics svc;
      close_store ~stats store
    end
    else begin
      if certify then begin
        prerr_endline "--certify is not supported with --shards";
        exit 2
      end;
      (* documents are loaded once, pre-fork; workers inherit them *)
      let docs = List.map (fun s -> parse_doc_spec s |> fun (n, f) -> (n, load_doc f)) docs in
      let config =
        config_of ~certificate:false ~retry_degraded:degrade ~domains
          ~prune:(not no_prune) ~cache_capacity:cache ~jobs:0 ()
      in
      (* runs in the worker child, post-fork: each shard owns its
         store file and registers the shared documents *)
      let make_service ~shard =
        let store =
          Option.map
            (fun path ->
              open_store ~verify:store_verify
                ~solver:config.Xpds.Service.Config.solver
                (path ^ "." ^ string_of_int shard))
            store_path
        in
        let svc = Xpds.Service.create ?store config in
        List.iter (register svc) docs;
        svc
      in
      let eng =
        Xpds.Shard.engine ~queue_depth
          ?default_timeout_ms:(default_timeout timeout_ms) ~trace
          ~make_service ~shards ~emit config
      in
      (* The router is asynchronous: worker responses turn ready while
         the loop is waiting for input, and a synchronous client reads
         each reply before sending its next line — so blocking in
         [read_line] alone would deadlock it. [Engine.wait] selects on
         stdin and the worker pipes together, pumping responses out as
         soon as workers produce them. *)
      let stdin_fd = Unix.stdin in
      let inbuf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let submit_buffered ~eof =
        let s = Buffer.contents inbuf in
        let rec go start =
          match String.index_from_opt s start '\n' with
          | Some i ->
            Xpds.Engine.submit eng (String.sub s start (i - start));
            go (i + 1)
          | None ->
            Buffer.clear inbuf;
            if eof then begin
              (* a final line without its newline still gets a reply *)
              if start < String.length s then
                Xpds.Engine.submit eng
                  (String.sub s start (String.length s - start))
            end
            else Buffer.add_substring inbuf s start (String.length s - start)
        in
        go 0
      in
      let eof = ref false in
      while not !eof do
        let ready = Xpds.Engine.wait eng ~read_fds:[ stdin_fd ] 1.0 in
        if ready <> [] then
          match Unix.read stdin_fd chunk 0 (Bytes.length chunk) with
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
          | 0 ->
            eof := true;
            submit_buffered ~eof:true
          | n ->
            Buffer.add_subbytes inbuf chunk 0 n;
            submit_buffered ~eof:false
      done;
      Xpds.Engine.drain eng;
      if stats then
        Option.iter
          (fun j -> prerr_endline (Xpds.Json.to_string j))
          (Xpds.Engine.metrics_json eng);
      Xpds.Engine.close eng
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Solver service: read NDJSON requests {\"id\":.., \
          \"formula\":.., \"timeout_ms\":..} from stdin, answer \
          {\"id\":.., \"verdict\":.., \"cached\":.., \"ms\":..} per \
          line on stdout (a structured {\"error\":..} line for \
          malformed input — the loop never dies). Results are cached \
          by canonical formula; concurrent equal requests share one \
          solve. Requests with \"kind\":\"eval\" evaluate a query over \
          a document (registered with --doc, or sent inline as \
          \"xml\"/\"tree\") instead of deciding satisfiability. With \
          --certify each response carries a checked certificate \
          summary; with --trace, per-phase timings. With --store, a \
          persistent verdict store warm-starts the cache across \
          processes. Requests with \"kind\":\"contains\" or \
          \"equiv\" decide query containment/equivalence (a \"fails\" \
          answer carries a replayable counterexample tree); \
          \"kind\":\"sat_under_doctype\" decides satisfiability under \
          counting DTD rules.")
    Term.(
      const run $ timeout_arg $ cache_arg $ stats_arg $ certify_arg
      $ trace_arg $ degrade_arg $ domains_arg $ no_prune_arg $ docs_arg
      $ store_arg $ store_verify_arg $ shards_arg $ queue_depth_arg)

let batch_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "File with one formula per line (blank lines and lines \
             starting with # are skipped).")
  in
  let jobs_arg =
    let doc =
      "Worker domains draining the batch (0 = the machine's \
       recommended count)."
    in
    Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~doc)
  in
  let cert_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert-dir" ] ~docv:"DIR"
          ~doc:
            "Write each response's certificate to $(docv)/<id>.cert.json; \
             implies --certify.")
  in
  let run file jobs timeout_ms cache stats certify cert_dir trace degrade
      domains no_prune store_path store_verify =
    let certify = certify || cert_dir <> None in
    let ic = open_in file in
    let items = ref [] in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         let text = String.trim line in
         if text <> "" && text.[0] <> '#' then
           items := (!lineno, text) :: !items
       done
     with End_of_file -> close_in ic);
    let items = List.rev !items in
    (* Two input formats: a formula per line (the original batch mode,
       drained in parallel), or — when the first payload line opens a
       JSON object — NDJSON request lines, each processed through the
       full wire layer in order, so a batch file can mix every protocol
       kind (sat, eval, contains, equiv, sat_under_doctype). *)
    let ndjson =
      match items with (_, text) :: _ -> text.[0] = '{' | [] -> false
    in
    if ndjson then begin
      let svc, store =
        service_of ~certificate:certify ~retry_degraded:degrade ~domains
          ~prune:(not no_prune) ?store_path ~store_verify
          ~cache_capacity:cache ~jobs ()
      in
      let extra_of (resp : Xpds.Service.response) =
        if certify then
          let fields, _, _ =
            certify_report ~svc ~trace:resp.Xpds.Service.trace
              resp.Xpds.Service.report
          in
          fields
        else []
      in
      List.iter
        (fun (_, text) ->
          print_endline
            (Xpds.Service.handle_line
               ?default_timeout_ms:(default_timeout timeout_ms) ~trace
               ~extra_of svc text))
        items;
      if stats then print_metrics svc;
      close_store ~stats store
    end
    else begin
    let requests =
      List.map
        (fun (lineno, text) ->
          match Xpds.Parser.formula_of_string text with
          | Error e ->
            Printf.eprintf "%s:%d: %s\n%!" file lineno e;
            exit 2
          | Ok f ->
            { Xpds.Service.id = Printf.sprintf "L%d" lineno;
              formula = Xpds.Ast.as_node f;
              timeout_ms = default_timeout timeout_ms
            })
        items
    in
    let svc, store =
      service_of ~certificate:certify ~retry_degraded:degrade ~domains
        ~prune:(not no_prune) ?store_path ~store_verify
        ~cache_capacity:cache ~jobs ()
    in
    let responses = Xpds.Service.solve_batch svc requests in
    (match cert_dir with
    | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
    | _ -> ());
    let all_ok = ref true in
    List.iter
      (fun resp ->
        let extra =
          if certify then begin
            let fields, cert, ok =
              certify_report ~svc ~trace:resp.Xpds.Service.trace
                resp.Xpds.Service.report
            in
            if not ok then all_ok := false;
            (match (cert_dir, cert) with
            | Some dir, Some cert ->
              Xpds.Cert.to_file
                (Filename.concat dir (resp.Xpds.Service.id ^ ".cert.json"))
                cert
            | _ -> ());
            fields
          end
          else []
        in
        print_endline (Xpds.Service.response_to_json ~trace ~extra resp))
      responses;
    if stats then print_metrics svc;
    close_store ~stats store;
    if not !all_ok then exit 4
    end
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Decide every formula in FILE on a pool of worker domains, \
          printing one NDJSON response per formula (a crashing item \
          yields an {\"error\":..} response; the rest of the batch \
          still completes). When the first payload line opens a JSON \
          object, FILE is instead read as NDJSON protocol requests — \
          one {\"kind\":\"sat\"|\"eval\"|\"contains\"|\"equiv\"|\
          \"sat_under_doctype\", ...} request per line, answered in \
          order. With --certify every verdict is certified and \
          independently re-checked (exit 4 if any certificate fails); \
          with --trace, per-phase timings. With --store, a persistent \
          verdict store warm-starts the cache across processes.")
    Term.(
      const run $ file_arg $ jobs_arg $ timeout_arg $ cache_arg
      $ stats_arg $ certify_arg $ cert_dir_arg $ trace_arg
      $ degrade_arg $ domains_arg $ no_prune_arg $ store_arg
      $ store_verify_arg)

(* --- certify --- *)

let certify_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Certificate file (JSON).")
  in
  let budget_arg =
    let doc =
      "Work budget of the naive checker (transition evaluations); an \
       exhausted budget is reported as inconclusive, not as a \
       rejection."
    in
    Arg.(value & opt int 2_000_000 & info [ "budget" ] ~doc)
  in
  let run file budget =
    match Xpds.Cert.of_file file with
    | Error e ->
      Printf.eprintf "%s: %s\n%!" file e;
      exit 2
    | Ok cert -> (
      let t0 = Unix.gettimeofday () in
      let result = Xpds.Cert.check ~work_budget:budget cert in
      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
      match result with
      | Ok v ->
        Format.printf "%a (checked in %.1f ms)@." Xpds.Cert.pp_verdict v ms;
        exit 0
      | Error e ->
        Format.printf "REJECTED: %s@." e;
        exit 1)
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Re-check a stored certificate with the independent naive \
          verifier. Exit: 0 certificate accepted, 1 rejected, 2 unreadable.")
    Term.(const run $ file_arg $ budget_arg)

(* --- cache: snapshot export / import / offline stats --- *)

let cache_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let num n = Xpds.Json.Num (float_of_int n) in
  let export_cmd =
    let src_arg =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"STORE" ~doc:"Source store file.")
    in
    let dst_arg =
      Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"SNAPSHOT" ~doc:"Destination snapshot file.")
    in
    let run src dst json =
      match Xpds.Store.export ~src ~dst with
      | Error e ->
        prerr_endline ("cache export: " ^ e);
        exit 2
      | Ok info ->
        if json then
          print_endline
            (Xpds.Json.to_string
               (Xpds.Json.Obj
                  [ ("snapshot", Xpds.Json.Str dst);
                    ("exported", num info.Xpds.Store.exported);
                    ("skipped", num info.Xpds.Store.skipped);
                    ("snapshot_bytes", num info.Xpds.Store.snapshot_bytes)
                  ]))
        else
          Format.printf
            "exported %d records to %s (%d bytes%s)@."
            info.Xpds.Store.exported dst info.Xpds.Store.snapshot_bytes
            (if info.Xpds.Store.skipped > 0 then
               Printf.sprintf ", %d corrupt records skipped"
                 info.Xpds.Store.skipped
             else "");
        exit 0
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Compact a verdict store into a fresh snapshot: one record \
            per live key, each re-verified against its own certificate \
            fingerprint, sorted for deterministic bytes.")
      Term.(const run $ src_arg $ dst_arg $ json_arg)
  in
  let import_cmd =
    let snap_arg =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"SNAPSHOT" ~doc:"Snapshot to import.")
    in
    let dst_arg =
      Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"STORE" ~doc:"Destination store file.")
    in
    let run snapshot store_path json =
      match Xpds.Store.import_into ~snapshot ~store_path with
      | Error e ->
        prerr_endline ("cache import: " ^ e);
        exit 2
      | Ok n ->
        if json then
          print_endline
            (Xpds.Json.to_string
               (Xpds.Json.Obj
                  [ ("store", Xpds.Json.Str store_path);
                    ("imported", num n)
                  ]))
        else Format.printf "imported %d records into %s@." n store_path;
        exit 0
    in
    Cmd.v
      (Cmd.info "import"
         ~doc:
           "Append a snapshot's records into a store (created when \
            absent), skipping keys already present. Refuses a snapshot \
            whose protocol or solver-config fingerprint disagrees with \
            the store's.")
      Term.(const run $ snap_arg $ dst_arg $ json_arg)
  in
  let stats_cmd =
    let file_arg =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"Store or snapshot file to inspect.")
    in
    let run file json =
      match Xpds.Store.file_stats file with
      | Error e ->
        prerr_endline ("cache stats: " ^ e);
        exit 2
      | Ok s ->
        let c = s.Xpds.Store.fs_totals in
        if json then
          print_endline
            (Xpds.Json.to_string
               (Xpds.Json.Obj
                  [ ("file", Xpds.Json.Str file);
                    ("protocol", num s.Xpds.Store.fs_protocol);
                    ("config", Xpds.Json.Str s.Xpds.Store.fs_config);
                    ("file_bytes", num s.Xpds.Store.fs_file_bytes);
                    ("dropped_bytes", num s.Xpds.Store.fs_dropped_bytes);
                    ("live_records", num s.Xpds.Store.fs_live);
                    ("record_frames", num s.Xpds.Store.fs_record_frames);
                    ("tombstones", num s.Xpds.Store.fs_tombstones);
                    ("sessions", num s.Xpds.Store.fs_sessions);
                    ( "verdicts",
                      Xpds.Json.Obj
                        (List.map
                           (fun (k, v) -> (k, num v))
                           s.Xpds.Store.fs_verdicts) );
                    ( "tiers",
                      Xpds.Json.Obj
                        [ ("memory", num c.Xpds.Store.memory_hits);
                          ("disk", num c.Xpds.Store.disk_hits);
                          ("solve", num c.Xpds.Store.misses)
                        ] );
                    ("self_evictions", num c.Xpds.Store.self_evictions);
                    ("appends", num c.Xpds.Store.appends)
                  ]))
        else begin
          Format.printf "%s: protocol v%d, config %s@." file
            s.Xpds.Store.fs_protocol s.Xpds.Store.fs_config;
          Format.printf
            "  %d live records (%d frames, %d tombstones) in %d bytes%s@."
            s.Xpds.Store.fs_live s.Xpds.Store.fs_record_frames
            s.Xpds.Store.fs_tombstones s.Xpds.Store.fs_file_bytes
            (if s.Xpds.Store.fs_dropped_bytes > 0 then
               Printf.sprintf " (%d damaged bytes dropped)"
                 s.Xpds.Store.fs_dropped_bytes
             else "");
          List.iter
            (fun (k, v) -> Format.printf "  %-16s %d@." k v)
            s.Xpds.Store.fs_verdicts;
          Format.printf
            "  lifetime (%d sessions): %d memory hits, %d disk hits, \
             %d misses, %d self-evictions, %d appends@."
            s.Xpds.Store.fs_sessions c.Xpds.Store.memory_hits
            c.Xpds.Store.disk_hits c.Xpds.Store.misses
            c.Xpds.Store.self_evictions c.Xpds.Store.appends
        end;
        exit 0
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Inspect a store or snapshot offline: header, live records, \
            verdict histogram, damage, and lifetime per-tier counters \
            summed over session frames.")
      Term.(const run $ file_arg $ json_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Manage persistent verdict stores: compact snapshots \
          ([export]), merge them into live stores ([import]), and \
          inspect files offline ([stats]).")
    [ export_cmd; import_cmd; stats_cmd ]

(* --- bench --- *)

let bench_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"Benchmark to run: \"emptiness\", \"certify\", \
                \"service\", \"eval\", \"store\", \"containment\" or \
                \"load\".")
  in
  let bench_shards_arg =
    Arg.(
      value & opt int 2
      & info [ "shards" ]
          ~doc:
            "Worker processes for the \"load\" harness (the topology \
             under test).")
  in
  let bench_queue_depth_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ]
          ~doc:
            "Per-shard admission queue bound for the \"load\" harness.")
  in
  let quick_arg =
    let doc =
      "CI smoke mode: a handful of small families under a tight \
       transition budget, asserting the verdict each family guarantees \
       by construction; nonzero exit on any mismatch."
    in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_emptiness.json"
      & info [ "o"; "out" ] ~doc:"Where to write the JSON results.")
  in
  let run target quick out domains no_prune shards queue_depth =
    match target with
    | "emptiness" ->
      exit
        (Emptiness_bench.run ~quick ~out
           ~domains:(resolve_domains domains) ~prune:(not no_prune) ())
    | "certify" ->
      let out = if out = "BENCH_emptiness.json" then "BENCH_certify.json" else out in
      exit (Certify_bench.run ~quick ~out ())
    | "service" ->
      let out = if out = "BENCH_emptiness.json" then "BENCH_service.json" else out in
      exit (Service_bench.run ~quick ~out ())
    | "eval" ->
      let out = if out = "BENCH_emptiness.json" then "BENCH_eval.json" else out in
      exit (Eval_bench.run ~quick ~out ())
    | "store" ->
      let out = if out = "BENCH_emptiness.json" then "BENCH_store.json" else out in
      exit (Store_bench.run ~quick ~out ())
    | "containment" ->
      let out = if out = "BENCH_emptiness.json" then "BENCH_containment.json" else out in
      exit (Containment_bench.run ~quick ~out ())
    | "load" ->
      let out = if out = "BENCH_emptiness.json" then "BENCH_load.json" else out in
      exit
        (Load_bench.run ~quick ~out ~shards:(max 1 shards)
           ~queue_depth:(max 1 queue_depth) ())
    | other ->
      prerr_endline
        ("unknown bench target " ^ other
       ^ " (have: emptiness, certify, service, eval, store, containment, \
          load)");
      exit 2
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run a repository benchmark and write machine-readable JSON \
          (cold wall-time and engine throughput for \"emptiness\").")
    Term.(
      const run $ target_arg $ quick_arg $ out_arg $ domains_arg
      $ no_prune_arg $ bench_shards_arg $ bench_queue_depth_arg)

let () =
  let info =
    Cmd.info "xpds" ~version:"1.0.0"
      ~doc:
        "Satisfiability of downward XPath with data equality tests \
         (Figueira, PODS 2009)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ sat_cmd; classify_cmd; check_cmd; explain_cmd; translate_cmd;
            contains_cmd; equiv_cmd; tiling_cmd; qbf_cmd; gen_cmd; repl_cmd;
            xml_cmd; eval_cmd; serve_cmd; batch_cmd; certify_cmd; cache_cmd;
            bench_cmd
          ]))
