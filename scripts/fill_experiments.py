#!/usr/bin/env python3
"""Inject the bench harness output into EXPERIMENTS.md.

Usage: python3 scripts/fill_experiments.py bench_output.txt

Splits the harness output at the `== E<n>: ... ==` headers and replaces
each `<!-- E<n> table -->` placeholder (or previously injected block)
with the verbatim table in a fenced code block.
"""

import re
import sys

def main(bench_path: str, doc_path: str = "EXPERIMENTS.md") -> None:
    bench = open(bench_path, encoding="utf-8").read()
    sections: dict[str, str] = {}
    current = None
    buf: list[str] = []
    for line in bench.splitlines():
        m = re.match(r"== (E\d+):", line)
        if m:
            if current:
                sections[current] = "\n".join(buf).rstrip()
            current = m.group(1)
            buf = [line]
        elif current:
            if line.strip() == "done.":
                break
            buf.append(line)
    if current:
        sections[current] = "\n".join(buf).rstrip()

    doc = open(doc_path, encoding="utf-8").read()
    for eid, body in sections.items():
        block = f"<!-- {eid} table -->\n```\n{body}\n```\n<!-- {eid} end -->"
        injected = re.compile(
            rf"<!-- {eid} table -->.*?<!-- {eid} end -->", re.S
        )
        placeholder = f"<!-- {eid} table -->"
        if injected.search(doc):
            doc = injected.sub(lambda _m: block, doc)
        elif placeholder in doc:
            doc = doc.replace(placeholder, block)
        else:
            print(f"warning: no placeholder for {eid}", file=sys.stderr)
    open(doc_path, "w", encoding="utf-8").write(doc)
    print(f"injected {len(sections)} tables into {doc_path}")

if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
