(* The paper's motivating XML scenario (Example 1): a library catalogue
   where attributes carry data values. We parse real XML, encode it as a
   data tree (Appendix A), run attrXPath integrity queries against both
   the document and its encoding, and use satisfiability to detect a
   contradictory query at "compile time".

   Run with:  dune exec examples/library_catalog.exe *)

let catalogue =
  {|<library>
      <book ID="5" title="Ficciones">
        <author lastname="Borges"/>
        <related ID="8"/>
      </book>
      <book ID="8" title="The Aleph">
        <author lastname="Borges"/>
        <related ID="8"/>
      </book>
    </library>|}

open Xpds.Attr_xpath

(* ⟨↓[book]⟩ with a data test: a book whose ID equals the ID of one of
   its own <related> children — a self-reference violation. *)
let self_reference =
  Exists
    (Filter
       ( Child,
         And
           ( Tag "book",
             Cmp (Self, "ID", Xpds.Ast.Eq, Filter (Child, Tag "related"), "ID")
           ) ))

(* A book recommending a *different* book: related ID ≠ its own ID. *)
let proper_reference =
  Exists
    (Filter
       ( Child,
         And
           ( Tag "book",
             Cmp (Self, "ID", Xpds.Ast.Neq, Filter (Child, Tag "related"), "ID")
           ) ))

let () =
  let doc = Xpds.Xml_doc.parse_exn catalogue in
  Format.printf "document:@.%a@.@." Xpds.Xml_doc.pp doc;
  let tree = Xpds.Xml_doc.to_data_tree doc in
  Format.printf "as a data tree (attributes become leaf children):@.%a@.@."
    Xpds.Data_tree.pp tree;

  (* Evaluate attrXPath directly on the document... *)
  Format.printf "self-reference violation present:  %b@."
    (check_doc doc self_reference);
  Format.printf "proper cross-reference present:    %b@."
    (check_doc doc proper_reference);

  (* ... and through the Appendix-A translation on the data tree: the
     two semantics agree (this is the content of Appendix A). *)
  let agree q =
    Xpds.Semantics.check tree (tr q) = check_doc doc q
  in
  Format.printf "translation agrees with the direct semantics: %b@.@."
    (agree self_reference && agree proper_reference);

  (* Static analysis without any document: a query demanding a book
     whose related-ID both equals and differs from every... here simply
     both equals and is distinct from its single related child's ID with
     one related child — we ask for equality and its negation. *)
  let contradiction =
    Exists
      (Filter
         ( Child,
           And
             ( Tag "book",
               And
                 ( Cmp
                     (Self, "ID", Xpds.Ast.Eq,
                      Filter (Child, Tag "related"), "ID"),
                   Not
                     (Cmp
                        (Self, "ID", Xpds.Ast.Eq,
                         Filter (Child, Tag "related"), "ID")) ) ) ))
  in
  let formula = Xpds.Attr_xpath.satisfiability_formula contradiction in
  (* The ϕ_struct conjunct makes this a sizable ExpTime instance;
     within the example's budget the solver may answer UNKNOWN — never
     a wrong SAT (the honesty policy of the README). *)
  Format.printf "contradictory query: %a@." Xpds.Sat.pp_verdict
    (Xpds.Sat.decide
       ~options:
         Xpds.Sat.Options.(
           default |> with_max_states 2_000 |> with_max_transitions 40_000)
       formula)
      .Xpds.Sat.verdict;

  (* Query containment on the translated queries: the self-reference
     query implies the plain "book with a related child" query. *)
  let weaker =
    Exists (Filter (Child, And (Tag "book", Exists (Filter (Child, Tag "related")))))
  in
  (match Xpds.Containment.contained (tr self_reference) (tr weaker) with
  | Xpds.Containment.Holds | Xpds.Containment.Holds_bounded _ ->
    Format.printf "containment: self-reference query => related-child query@."
  | Xpds.Containment.Fails w ->
    Format.printf "containment fails?! counterexample %a@." Xpds.Data_tree.pp w
  | Xpds.Containment.Unknown why ->
    Format.printf
      "containment direction not settled within budget (%s)@." why);
  (* And the converse fails, with a counterexample tree. *)
  match Xpds.Containment.contained (tr weaker) (tr self_reference) with
  | Xpds.Containment.Fails w ->
    Format.printf "converse fails, e.g. on %a@." Xpds.Data_tree.pp w
  | _ -> Format.printf "converse unexpectedly holds@."
