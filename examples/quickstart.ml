(* Quickstart: parse, evaluate, decide, inspect.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* The paper's running example (§2.2): nodes labelled b with two
     b-children carrying different data values, reachable from the
     root. *)
  let formula = "<desc[b & down[b] != down[b]]>" in
  let phi =
    match Xpds.Parser.node_of_string formula with
    | Ok phi -> phi
    | Error e -> failwith e
  in
  Format.printf "formula: %a@." Xpds.Pp.pp_fancy_node phi;

  (* Evaluate it on the paper's Example 1 data tree. *)
  let tree = Xpds.Data_tree.example_fig1 () in
  Format.printf "tree:    %a@." Xpds.Data_tree.pp tree;
  let env = Xpds.Semantics.env_of_tree tree in
  Format.printf "[[formula]] = {%a}  (the paper says {\xce\xb5, 1, 12})@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Xpds.Path.pp)
    (Xpds.Semantics.sat_nodes env phi);

  (* Which fragment of Fig. 4 is it in, and what does that cost? *)
  let fragment = Xpds.Fragment.classify phi in
  Format.printf "fragment: %s (%s)@."
    (Xpds.Fragment.name fragment)
    (match Xpds.Fragment.complexity fragment with
    | Xpds.Fragment.PSpace -> "PSpace-complete"
    | Xpds.Fragment.ExpTime -> "ExpTime-complete");

  (* Decide satisfiability — the emptiness of the Theorem-3 automaton —
     and get a machine-checked witness. *)
  let report = Xpds.Sat.decide phi in
  Format.printf "%a@." Xpds.Sat.pp_report report;

  (* An unsatisfiable variant: the same pattern, but all data values in
     the tree are forced equal to the root's. Refutations are where the
     ExpTime procedure pays (Fig. 4: this fragment is
     ExpTime-complete), so with a small budget the solver answers
     honestly UNKNOWN rather than guessing — and the brute-force
     baseline confirms there is no small model either. *)
  let contradictory = Printf.sprintf "%s & ~(eps != desc)" formula in
  let phi' = Xpds.Parser.node_of_string_exn contradictory in
  Format.printf "@.now with all data equal to the root:@.%a@."
    Xpds.Sat.pp_report
    (Xpds.Sat.decide
       ~options:
         Xpds.Sat.Options.(
           default |> with_max_states 2_000 |> with_max_transitions 40_000)
       phi');
  (match
     Xpds.Model_search.search ~max_height:3 ~max_width:2 ~max_data:2
       ~max_trees:2_000_000
       (Xpds.Ast.Exists (Xpds.Ast.Filter (Xpds.Build.desc, phi')))
   with
  | Xpds.Model_search.Sat t ->
    Format.printf "model search found %a?!@." Xpds.Data_tree.pp t
  | Xpds.Model_search.Unsat_within_bounds n ->
    Format.printf
      "brute-force search agrees: no model among %d bounded trees@." n
  | Xpds.Model_search.Budget_exhausted _ ->
    Format.printf "brute-force search exhausted its budget@.")
