(* The PSpace lower bound, executed end to end (Prop 8 / Appendix E):
   QBF validity decided three ways — by the direct recursive solver, by
   satisfiability of the XPath(↓∗) encoding, and by inspecting the
   witness tree, whose branches spell out the winning valuations.

   Run with:  dune exec examples/qbf_reduction.exe *)

let show name q =
  Format.printf "--- %s: %a@." name Xpds.Qbf.pp q;
  let truth = Xpds.Qbf.valid q in
  Format.printf "direct solver: %s@." (if truth then "valid" else "invalid");
  let phi = Xpds.Qbf_encoding.encode q in
  Format.printf "encoding: %d AST nodes in %s (data-free)@."
    (Xpds.Measure.size_node phi)
    (Xpds.Fragment.name (Xpds.Fragment.classify phi));
  assert (Xpds.Qbf_encoding.is_data_free phi);
  let report =
    Xpds.Sat.decide
      ~options:
        Xpds.Sat.Options.(
          default |> with_max_states 100_000
          |> with_max_transitions 2_000_000 |> with_minimize true)
      phi
  in
  (match report.Xpds.Sat.verdict with
  | Xpds.Sat.Sat w ->
    Format.printf "encoding SAT; minimized strategy tree:@.  %a@."
      Xpds.Data_tree.pp w;
    assert truth
  | Xpds.Sat.Unsat | Xpds.Sat.Unsat_bounded _ ->
    Format.printf "encoding UNSAT@.";
    assert (not truth)
  | Xpds.Sat.Unknown why -> Format.printf "gave up (%s)@." why);
  Format.printf "@."

let () =
  show "forall-exists (valid)"
    { Xpds.Qbf.prefix = [ Xpds.Qbf.Forall; Xpds.Qbf.Exists ];
      clauses = [ [ 1; 2 ]; [ -1; -2 ] ]
    };
  show "exists-forall (invalid)"
    { Xpds.Qbf.prefix = [ Xpds.Qbf.Exists; Xpds.Qbf.Forall ];
      clauses = [ [ 1; 2 ]; [ -1; -2 ] ]
    };
  show "one variable, contradictory"
    { Xpds.Qbf.prefix = [ Xpds.Qbf.Exists ]; clauses = [ [ 1 ]; [ -1 ] ] };
  (* Parse the DIMACS-ish syntax used by the CLI. *)
  match Xpds.Qbf.of_string "AE: 1 2 0 -2 -1 0" with
  | Ok q -> show "parsed instance" q
  | Error e -> prerr_endline e
