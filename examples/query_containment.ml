(* Query optimization by containment and equivalence checking — the
   static-analysis use case motivating satisfiability in the paper's
   introduction: since the logic is closed under boolean operations,
   ϕ ⊑ ψ reduces to unsatisfiability of ϕ ∧ ¬ψ (§4.1).

   Run with:  dune exec examples/query_containment.exe *)

let parse = Xpds.Parser.node_of_string_exn

let show_containment name phi psi =
  match Xpds.Containment.contained phi psi with
  | Xpds.Containment.Holds -> Format.printf "%-40s holds (certified)@." name
  | Xpds.Containment.Holds_bounded _ ->
    Format.printf "%-40s holds (within search bounds)@." name
  | Xpds.Containment.Fails w ->
    Format.printf "%-40s FAILS on %a@." name Xpds.Data_tree.pp w
  | Xpds.Containment.Unknown why ->
    Format.printf "%-40s unknown (%s)@." name why

let () =
  (* 1. Axis algebra: desc/desc collapses to desc; ⟨↓[a]⟩ implies ⟨↓⟩. *)
  let q1 = parse "<desc/desc[a]>" and q1' = parse "<desc[a]>" in
  show_containment "desc/desc[a] <= desc[a]" q1 q1';
  show_containment "desc[a] <= desc/desc[a]" q1' q1;

  (* 2. A redundant filter: the optimizer may drop it. *)
  let q2 = parse "<down[a & <desc>]>" and q2' = parse "<down[a]>" in
  show_containment "down[a & <desc>] == down[a]  (=>)" q2 q2';
  show_containment "down[a & <desc>] == down[a]  (<=)" q2' q2;

  (* 3. Data tests are NOT redundant: requiring two a-children with
     *different* data is strictly stronger than requiring two
     a-children. *)
  let q3 = parse "down[a] != down[a]" in
  let q3' = parse "<down[a]>" in
  show_containment "down[a] != down[a] <= <down[a]>" q3 q3';
  show_containment "<down[a]> <= down[a] != down[a]" q3' q3;

  (* 4. A subtle equivalence with the Kleene star: one-or-more vs
     zero-or-more composed with one step. *)
  let q4 = parse "<down[a]/(down[a])*>" in
  let q4' = parse "<(down[a])*/down[a]>" in
  show_containment "a+ (left) <= a+ (right)" q4 q4';
  show_containment "a+ (right) <= a+ (left)" q4' q4;

  (* 5. The crucial non-equivalence behind the ExpTime lower bound: a
     data equality with the root does not propagate through ↓∗ — ε=↓∗[a]
     is weaker than ε=↓[a]. *)
  let q5 = parse "eps = down[a]" and q5' = parse "eps = desc[a]" in
  show_containment "eps = down[a] <= eps = desc[a]" q5 q5';
  show_containment "eps = desc[a] <= eps = down[a]" q5' q5;

  (* 6. Equivalence check used as a regression test for a rewriting:
     Rewrite.simplify must produce an equivalent formula. *)
  let original = parse "<down[(a | a) & true]/(eps/eps)>" in
  let simplified = Xpds.Rewrite.simplify original in
  Format.printf "@.simplify: %a  ~~>  %a@." Xpds.Pp.pp_node original
    Xpds.Pp.pp_node simplified;
  match Xpds.Containment.equivalent original simplified with
  | ( (Xpds.Containment.Holds | Xpds.Containment.Holds_bounded _),
      (Xpds.Containment.Holds | Xpds.Containment.Holds_bounded _) ) ->
    Format.printf "equivalence verified by the solver@."
  | _ -> Format.printf "NOT equivalent?!@."
