(* The ExpTime lower bound, executed: the two-player corridor tiling
   game, its direct game-theoretic solution, and its Theorem-5 encoding
   into XPath(↓∗,=). On instances where Eloise wins, the encoding is
   satisfiable; where Abelard wins, it is unsatisfiable.

   Run with:  dune exec examples/tiling_strategy.exe *)

let describe name (inst : Xpds.Tiling_game.instance) =
  Format.printf "--- %s: corridor width %d, %d tiles, initial row [%s]@."
    name inst.Xpds.Tiling_game.n inst.Xpds.Tiling_game.s
    (String.concat "; "
       (Array.to_list (Array.map string_of_int inst.Xpds.Tiling_game.initial)));
  let wins = Xpds.Tiling_game.eloise_wins inst in
  Format.printf "game solver: Eloise %s@."
    (if wins then "wins" else "loses");
  let phi = Xpds.Tiling.encode inst in
  Format.printf "encoding: %d AST nodes, %d data tests, fragment %s@."
    (Xpds.Measure.size_node phi)
    (Xpds.Measure.data_tests phi)
    (Xpds.Fragment.name (Xpds.Fragment.classify phi));
  assert (Xpds.Tiling.in_desc_fragment phi);
  wins

let () =
  let w = describe "example_win" (Xpds.Tiling_game.example_win ()) in
  let l = describe "example_lose" (Xpds.Tiling_game.example_lose ()) in
  assert (w && not l);

  (* A slightly larger instance: tiles {1,2} alternate horizontally and
     must repeat vertically; the winning tile 3 becomes placeable only
     on top of a 2. Eloise plays column 1 and can steer the board. *)
  let custom =
    {
      Xpds.Tiling_game.n = 2;
      s = 3;
      initial = [| 1; 2 |];
      h = [ (1, 2); (2, 1); (1, 3); (2, 3) ];
      v = [ (1, 1); (2, 2); (2, 3) ];
    }
  in
  let _ = describe "custom" custom in

  (* Encoding-size scaling: the reduction is polynomial (Theorem 5). *)
  Format.printf "@.encoding size by instance size (polynomial growth):@.";
  List.iter
    (fun (n, s) ->
      let inst =
        {
          Xpds.Tiling_game.n;
          s;
          initial = Array.init n (fun i -> 1 + (i mod s));
          h = List.concat_map (fun a -> List.init s (fun b -> (a, b + 1)))
                (List.init s (fun a -> a + 1));
          v = List.concat_map (fun a -> List.init s (fun b -> (a, b + 1)))
                (List.init s (fun a -> a + 1));
        }
      in
      let phi = Xpds.Tiling.encode inst in
      Format.printf "  n=%d s=%d  ->  size %d@." n s
        (Xpds.Measure.size_node phi))
    [ (2, 2); (2, 3); (4, 3); (4, 4); (6, 4) ]
